#include "corpus/epoch_view.h"

#include <utility>

#include "xpath/evaluator.h"

namespace primelabel {

namespace {

/// Per-view heap footprint of a materialized document's label store: the
/// BigInt label per node, its fingerprint, and the SC table's working
/// form — per record the struct with its moduli/orders buffers and SC
/// BigInt, plus the per-node order index. Mirrors the heap branch of
/// LoadedCatalog::label_store_bytes so the two modes are comparable.
std::size_t HeapLabelBytes(const LabeledDocument& doc) {
  constexpr std::size_t kMapNodeOverhead = sizeof(void*);
  std::size_t bytes = 0;
  const auto& structure = doc.scheme().structure();
  doc.tree().Preorder([&](NodeId id, int) {
    bytes += sizeof(BigInt) + structure.label(id).Magnitude().size() * 8 +
             sizeof(LabelFingerprint);
  });
  std::size_t tracked = 0;
  for (const ScRecord& record : doc.scheme().sc_table().records()) {
    bytes += sizeof(ScRecord) + record.sc.Magnitude().size() * 8 +
             (record.moduli.size() + record.orders.size()) * 8;
    tracked += record.moduli.size();
  }
  bytes += tracked * (sizeof(std::uint64_t) +
                      sizeof(std::pair<std::size_t, std::size_t>) +
                      kMapNodeOverhead);
  return bytes;
}

}  // namespace

EpochView::EpochView(LabeledDocument doc) {
  auto owned = std::make_unique<LabeledDocument>(std::move(doc));
  owned->label_table();  // freeze lazy state before any sharing
  heap_label_bytes_ = HeapLabelBytes(*owned);
  doc_ = std::move(owned);
}

EpochView::EpochView(LoadedCatalog catalog) {
  PL_CHECK(catalog.arena_backed());
  catalog_ = std::make_unique<LoadedCatalog>(std::move(catalog));
  table_ = std::make_unique<LabelTable>(*catalog_);
}

std::size_t EpochView::node_count() const {
  return arena_backed() ? catalog_->row_count() : doc_->tree().node_count();
}

const StructureOracle& EpochView::oracle() const {
  if (arena_backed()) return *catalog_;
  return doc_->scheme();
}

const LabelTable& EpochView::label_table() const {
  return arena_backed() ? *table_ : doc_->label_table();
}

std::size_t EpochView::label_store_bytes() const {
  return arena_backed() ? catalog_->label_store_bytes() : heap_label_bytes_;
}

Result<std::vector<NodeId>> EpochView::Query(std::string_view xpath,
                                             int num_workers) const {
  return EvaluateSnapshot(label_table(), oracle(), xpath, num_workers);
}

const LabeledDocument& EpochView::document() const {
  if (!arena_backed()) return *doc_;
  std::call_once(doc_once_, [this] {
    Result<LabeledDocument> doc = LabeledDocument::FromCatalogRows(
        catalog_->MaterializeRows(), catalog_->MaterializeScTable(),
        /*fingerprints_valid=*/true, "arena epoch view");
    // The image passed every digest and shape check at open; a rebuild
    // failure here means the invariants above were violated.
    PL_CHECK(doc.ok());
    doc_ = std::make_unique<const LabeledDocument>(std::move(doc.value()));
  });
  return *doc_;
}

}  // namespace primelabel
