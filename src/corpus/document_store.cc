#include "corpus/document_store.h"

#include <algorithm>

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace primelabel {

DocumentStore::DocumentStore(int sc_group_size)
    : sc_group_size_(sc_group_size) {}

DocumentStore::DocId DocumentStore::AddDocument(std::string name,
                                                XmlTree tree) {
  Document doc;
  doc.name = std::move(name);
  doc.tree = std::make_unique<XmlTree>(std::move(tree));
  doc.scheme = std::make_unique<OrderedPrimeScheme>(sc_group_size_);
  doc.scheme->LabelTree(*doc.tree);
  doc.table = std::make_unique<LabelTable>(*doc.tree);
  documents_.push_back(std::move(doc));
  return static_cast<DocId>(documents_.size() - 1);
}

const std::string& DocumentStore::document_name(DocId doc) const {
  PL_CHECK(doc >= 0 && static_cast<std::size_t>(doc) < documents_.size());
  return documents_[static_cast<std::size_t>(doc)].name;
}

const XmlTree& DocumentStore::document(DocId doc) const {
  PL_CHECK(doc >= 0 && static_cast<std::size_t>(doc) < documents_.size());
  return *documents_[static_cast<std::size_t>(doc)].tree;
}

const OrderedPrimeScheme& DocumentStore::scheme(DocId doc) const {
  PL_CHECK(doc >= 0 && static_cast<std::size_t>(doc) < documents_.size());
  return *documents_[static_cast<std::size_t>(doc)].scheme;
}

Result<DocumentStore::QueryResult> DocumentStore::Query(
    std::string_view xpath) const {
  Result<XPathQuery> parsed = ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Query(parsed.value());
}

DocumentStore::QueryResult DocumentStore::Query(
    const XPathQuery& query) const {
  QueryResult result;
  for (std::size_t d = 0; d < documents_.size(); ++d) {
    const Document& doc = documents_[d];
    QueryContext ctx;
    ctx.table = doc.table.get();
    ctx.oracle = doc.scheme.get();
    XPathEvaluator evaluator(&ctx);
    for (NodeId node : evaluator.Evaluate(query)) {
      result.hits.push_back({static_cast<DocId>(d), node});
    }
    result.stats += ctx.stats;
  }
  return result;
}

int DocumentStore::MaxLabelBits() const {
  int bits = 0;
  for (const Document& doc : documents_) {
    bits = std::max(bits, doc.scheme->MaxLabelBits());
  }
  return bits;
}

std::size_t DocumentStore::total_nodes() const {
  std::size_t total = 0;
  for (const Document& doc : documents_) total += doc.tree->node_count();
  return total;
}

}  // namespace primelabel
