#ifndef PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_
#define PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/labeled_document.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "util/status.h"

namespace primelabel {

/// Crash-safe facade over a LabeledDocument: every mutation is journaled
/// to a write-ahead log before the caller gets its result back, restarts
/// recover the exact pre-crash state (snapshot + journal replay), and
/// checkpoints compact the journal into a fresh catalog-v3 snapshot.
///
/// On-disk layout inside the store directory (epochs make checkpoints
/// atomic — the MANIFEST names the current pair and is itself replaced by
/// an atomic rename, so a crash at any instant leaves a consistent pair):
///
///   MANIFEST              "PLMANIF1" + u64 epoch (little-endian)
///   snapshot-<epoch>.plc  catalog format v3 (store/catalog.h)
///   journal-<epoch>.wal   write-ahead journal (durability/wal.h)
///
/// The facade exposes the same mutation vocabulary as LabeledDocument and
/// the document's oracle/query surface read-only; anything that changes
/// the tree must go through the store so it lands in the journal.
class DurableDocumentStore {
 public:
  struct Options {
    // Non-aggregate on purpose: a user-provided default constructor lets
    // `= {}` default arguments compile on GCC (bug 88165).
    Options() {}
    int sc_group_size = 5;
    WalOptions wal;
  };

  /// Initializes a new store at `dir` (created if missing) from parsed
  /// XML: writes the epoch-0 snapshot, an empty journal and the MANIFEST.
  /// Fails with kInvalidArgument when `dir` already holds a store.
  static Result<DurableDocumentStore> Create(const std::string& dir,
                                             std::string_view xml,
                                             const Options& options = {});

  /// Opens an existing store: loads the MANIFEST's snapshot, replays the
  /// journal's intact prefix on top (tolerating torn tails and corrupt
  /// frames), truncates the journal to that prefix and resumes appending.
  static Result<DurableDocumentStore> Open(const std::string& dir,
                                           const Options& options = {});

  /// True when `dir` contains a store MANIFEST.
  static bool Exists(const std::string& dir);

  DurableDocumentStore(DurableDocumentStore&&) = default;
  DurableDocumentStore& operator=(DurableDocumentStore&&) = default;

  /// The recovered/live document. Read-only: mutate through the store.
  const LabeledDocument& document() const { return doc_; }
  /// Replay statistics of the Open that produced this store (zeroes for
  /// Create).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  std::uint64_t epoch() const { return epoch_; }
  const std::string& dir() const { return dir_; }

  Result<std::vector<NodeId>> Query(std::string_view xpath) const {
    return doc_.Query(xpath);
  }

  // --- Journaled mutations (same vocabulary as LabeledDocument) ----------
  // Each returns after the op is applied in memory AND its frames are
  // handed to the WAL; group-commit/sync policy decides when the bytes
  // are crash-durable (call Flush for a hard boundary).

  Result<NodeId> InsertBefore(NodeId sibling, std::string_view tag);
  Result<NodeId> InsertAfter(NodeId sibling, std::string_view tag);
  Result<NodeId> AppendChild(NodeId parent, std::string_view tag);
  Result<NodeId> Wrap(NodeId node, std::string_view tag);
  Status Delete(NodeId node);

  /// Commits any group-commit buffer and applies the sync policy.
  Status Flush();

  /// Compacts: writes a fresh catalog-v3 snapshot of the current state
  /// under the next epoch, starts an empty journal, atomically swings the
  /// MANIFEST, and best-effort removes the previous epoch's files. After
  /// a checkpoint, recovery replays nothing.
  Status Checkpoint();

  // --- Paths (for tests and tooling) -------------------------------------
  static std::string ManifestPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir,
                                  std::uint64_t epoch);
  static std::string JournalPath(const std::string& dir,
                                 std::uint64_t epoch);

 private:
  DurableDocumentStore(std::string dir, LabeledDocument doc,
                       WriteAheadLog wal, std::uint64_t epoch,
                       Options options);

  /// Journals one insert (kInsert + kScRewrite verification frame).
  Status JournalInsert(WalRecord::Op op, std::uint64_t anchor_self,
                       std::uint64_t cursor_before, NodeId fresh,
                       std::string_view tag);

  std::string dir_;
  LabeledDocument doc_;
  WriteAheadLog wal_;
  std::uint64_t epoch_ = 0;
  Options options_;
  RecoveryStats recovery_stats_;
};

}  // namespace primelabel

#endif  // PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_
