#ifndef PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_
#define PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/epoch_view.h"
#include "corpus/labeled_document.h"
#include "durability/delta.h"
#include "durability/epoch.h"
#include "durability/recovery.h"
#include "durability/vfs.h"
#include "durability/wal.h"
#include "util/status.h"

namespace primelabel {

/// A frozen, shareable read view of a durable store: the RAII EpochPin
/// that keeps the pinned epoch's files alive, an EpochView of exactly the
/// pinned (epoch, committed journal bytes) point, and the label-only
/// StructureOracle over it — the read surface the service layer exposes.
///
/// Sealed epochs — full v4 snapshot, no journal frames — are served
/// arena-backed (corpus/epoch_view.h): the labels stay in the catalog
/// image the store just wrote, mmapped and shared, with no per-view
/// BigInt materialization. Epochs with journal frames on top (or older
/// snapshot formats) materialize a LabeledDocument the classic way. Both
/// shapes answer every query identically.
///
/// The view is held by shared_ptr<const ...>: when several sessions pin
/// the same point through a view cache they share ONE materialization
/// instead of re-running recovery per reader. The materializer pre-builds
/// the view's label table, so everything reachable from a Snapshot is
/// immutable and every member here — document(), oracle(), Query() — is
/// safe to call concurrently from any number of threads.
///
/// Move-only; destroying (or moving from) the snapshot drops its pin,
/// which lets the registry retire whatever files the pin alone kept.
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;

  bool valid() const { return view_ != nullptr; }
  std::uint64_t epoch() const { return pin_.epoch(); }
  /// Committed journal length the view replays to; frames the writer
  /// appended after the pin are invisible.
  std::uint64_t journal_bytes() const { return pin_.journal_bytes(); }
  /// The pin backing this snapshot (tests re-materialize through it to
  /// prove cached views are bit-identical to a fresh rebuild).
  const EpochPin& pin() const { return pin_; }

  /// The frozen document. Arena-backed views materialize it lazily on
  /// first call (thread-safe, at most once); query paths never need it.
  /// Valid exactly as long as some snapshot (or the view cache) shares
  /// the view — callers may keep the shared_ptr from view() beyond the
  /// snapshot's lifetime, though the pin's file-retention guarantee ends
  /// with the snapshot.
  const LabeledDocument& document() const { return view_->document(); }
  std::shared_ptr<const EpochView> view() const { return view_; }

  /// Rows in the frozen view (== the document's attached node count),
  /// available without materializing anything.
  std::size_t node_count() const { return view_->node_count(); }
  /// True when this snapshot serves straight out of the catalog image.
  bool arena_backed() const { return view_->arena_backed(); }
  /// Resident label-store bytes behind this view (see EpochView).
  std::size_t label_store_bytes() const {
    return view_->label_store_bytes();
  }

  /// The label-only structural oracle of the frozen view — ancestry,
  /// order, and the batched entry points, decidable with no tree locks.
  const StructureOracle& oracle() const { return view_->oracle(); }

  /// Evaluates an XPath against the frozen view. Concurrency-safe across
  /// sessions sharing the view (per-call QueryContext; the label table
  /// was force-built at materialization). `num_workers` fans the batched
  /// join executor without mutating shared state.
  Result<std::vector<NodeId>> Query(std::string_view xpath,
                                    int num_workers = 1) const;

 private:
  friend class DurableDocumentStore;
  Snapshot(EpochPin pin, std::shared_ptr<const EpochView> view)
      : pin_(std::move(pin)), view_(std::move(view)) {}

  EpochPin pin_;
  std::shared_ptr<const EpochView> view_;
};

/// Materialized-view cache seam for OpenSnapshot. The store stays cache
/// -agnostic: when a cache is attached (service layer), snapshot opens
/// route through it so concurrent sessions pinning the same (epoch,
/// journal_bytes) point share one materialization; without one, every
/// open materializes privately. Implementations must be thread-safe and
/// must run `materialize` outside any lock that a concurrent lookup of a
/// different key would need.
class SnapshotViewCache {
 public:
  virtual ~SnapshotViewCache() = default;

  using Materializer =
      std::function<Result<std::shared_ptr<const EpochView>>()>;

  /// Returns the cached view for (epoch, journal_bytes), or runs
  /// `materialize` (once, even under concurrent misses of the same key)
  /// and caches the result. Failures are not cached.
  virtual Result<std::shared_ptr<const EpochView>> GetOrMaterialize(
      std::uint64_t epoch, std::uint64_t journal_bytes,
      const Materializer& materialize) = 0;
};

/// Crash-safe facade over a LabeledDocument: every mutation is journaled
/// to a write-ahead log before the caller gets its result back, restarts
/// recover the exact pre-crash state (snapshot + journal replay), and
/// checkpoints compact the journal into a fresh epoch.
///
/// On-disk layout inside the store directory (epochs make checkpoints
/// atomic — the MANIFEST names the current epoch and is itself replaced by
/// an atomic rename, so a crash at any instant leaves a consistent state):
///
///   MANIFEST              "PLMANIF1" + u64 epoch (little-endian)
///   snapshot-<epoch>.plc  catalog snapshot (store/catalog.h), OR
///   delta-<epoch>.pld     delta against a base epoch (durability/delta.h)
///   journal-<epoch>.wal   write-ahead journal (durability/wal.h)
///
/// An epoch stored as a delta chains to its base epoch, whose
/// snapshot/delta file is retained (journal dropped) until the chain is
/// compacted into a full snapshot again.
///
/// All file traffic goes through a Vfs (durability/vfs.h), so the fault
/// matrix can fail any single syscall the store issues. When journaling
/// itself fails — the store can no longer promise that an acknowledged
/// mutation will survive a restart — the store enters READ-ONLY QUARANTINE:
/// the in-memory document is rolled back to the last durable state, queries
/// keep serving it, and every mutation returns kUnavailable carrying the
/// root cause. Checkpoint failures before the MANIFEST swing are ordinary
/// typed errors (the old epoch stays authoritative and the store stays
/// live); stray files from such attempts are swept on the next Open.
///
/// Concurrent readers open snapshots (OpenSnapshot): the backing pin
/// captures (epoch, committed journal bytes) and the snapshot materializes
/// that exact view while the single writer keeps mutating and
/// checkpointing — the registry retires an epoch's files only once no pin
/// needs them.
///
/// The facade exposes the same mutation vocabulary as LabeledDocument and
/// the document's oracle/query surface read-only; anything that changes
/// the tree must go through the store so it lands in the journal.
class DurableDocumentStore {
 public:
  struct Options {
    // Non-aggregate on purpose: a user-provided default constructor lets
    // `= {}` default arguments compile on GCC (bug 88165).
    Options() {}
    int sc_group_size = 5;
    WalOptions wal;
    /// File system seam; nullptr means the process-wide PosixVfs. Tests
    /// pass a FaultInjectingVfs here. Must outlive the store and any pins.
    Vfs* vfs = nullptr;
    /// When true, Checkpoint writes a delta against the previous epoch
    /// whenever the change set is small enough, falling back to a full
    /// snapshot otherwise.
    bool delta_checkpoints = true;
    /// Compaction threshold: after this many consecutive delta epochs the
    /// next checkpoint writes a full snapshot, bounding recovery chains.
    int max_delta_chain = 4;
    /// A delta is only worth it while (patches + tombstones) / final rows
    /// stays at or below this fraction; above it, write a full snapshot.
    double delta_max_changed_fraction = 0.5;
    /// When true, OpenSnapshot serves *sealed* epochs — full v4 snapshot
    /// on disk, zero journal frames — as arena-backed views straight out
    /// of the mmapped catalog image instead of materializing a document.
    /// Purely a storage-mode switch: query answers are bit-identical.
    /// Epochs with journal frames, delta epochs, and pre-v4 snapshots
    /// always materialize. Corrupt images fail the open either way.
    bool arena_sealed_views = true;
  };

  /// Initializes a new store at `dir` (created if missing) from parsed
  /// XML: writes the epoch-0 snapshot, an empty journal and the MANIFEST.
  /// Fails with kInvalidArgument when `dir` already holds a store.
  static Result<DurableDocumentStore> Create(const std::string& dir,
                                             std::string_view xml,
                                             const Options& options = {});

  /// Opens an existing store: resolves the MANIFEST's epoch through its
  /// snapshot/delta chain, replays the journal's intact prefix on top
  /// (tolerating torn tails and corrupt frames), truncates the journal to
  /// that prefix, resumes appending, and sweeps stray files left by
  /// crashed checkpoints.
  static Result<DurableDocumentStore> Open(const std::string& dir,
                                           const Options& options = {});

  /// True when `dir` contains a store MANIFEST.
  static bool Exists(Vfs& vfs, const std::string& dir);
  static bool Exists(const std::string& dir) {
    return Exists(DefaultVfs(), dir);
  }

  DurableDocumentStore(DurableDocumentStore&&) = default;
  DurableDocumentStore& operator=(DurableDocumentStore&&) = default;

  /// The recovered/live document. Read-only: mutate through the store.
  const LabeledDocument& document() const { return doc_; }
  /// Replay statistics of the Open that produced this store (zeroes for
  /// Create).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  std::uint64_t epoch() const { return epoch_; }
  const std::string& dir() const { return dir_; }
  /// Consecutive delta epochs behind the current epoch (0 right after a
  /// full-snapshot checkpoint).
  int delta_chain_length() const { return chain_len_; }

  /// True once a journaling failure forced read-only quarantine.
  bool quarantined() const { return !quarantine_.ok(); }
  /// kUnavailable with the root cause while quarantined, Ok otherwise.
  const Status& quarantine_reason() const { return quarantine_; }

  Result<std::vector<NodeId>> Query(std::string_view xpath) const {
    return doc_.Query(xpath);
  }

  // --- Journaled mutations (same vocabulary as LabeledDocument) ----------
  // Each returns after the op is applied in memory AND its frames are
  // handed to the WAL; group-commit/sync policy decides when the bytes
  // are crash-durable (call Flush for a hard boundary). Any journaling
  // failure rolls the in-memory document back to the last durable state
  // and quarantines the store; while quarantined every mutation returns
  // kUnavailable without touching anything.

  Result<NodeId> InsertBefore(NodeId sibling, std::string_view tag);
  Result<NodeId> InsertAfter(NodeId sibling, std::string_view tag);
  Result<NodeId> AppendChild(NodeId parent, std::string_view tag);
  Result<NodeId> Wrap(NodeId node, std::string_view tag);
  Status Delete(NodeId node);

  /// Commits any group-commit buffer and applies the sync policy.
  Status Flush();

  /// Compacts: writes the current state under the next epoch — as a delta
  /// against this epoch when enabled and the change set is small, else as
  /// a full catalog snapshot — starts an empty journal, atomically
  /// swings the MANIFEST, and retires whatever no pin still needs. After
  /// a checkpoint, recovery replays nothing.
  Status Checkpoint();

  // --- Concurrent pinned readers ------------------------------------------

  /// Pins the current epoch at its current committed journal length.
  /// Cheap; safe to call from any thread. While the pin lives, every file
  /// needed to reconstruct this exact view is retained.
  EpochPin PinEpoch() const { return registry_->Pin(registry_); }

  /// Pins the current epoch and materializes a frozen, shareable view of
  /// it — the read entry point. Safe from any thread while the single
  /// writer keeps mutating and checkpointing. When a view cache is
  /// attached (set_view_cache), concurrent opens of the same (epoch,
  /// journal bytes) point share one materialization; otherwise each open
  /// rebuilds from disk (snapshot/delta chain + committed journal
  /// prefix). The returned view's label table is pre-built, so every read
  /// on the Snapshot is concurrency-safe.
  Result<Snapshot> OpenSnapshot() const;

  /// Attaches (or clears, with nullptr) the materialized-view cache that
  /// OpenSnapshot routes through. Not synchronized: attach before reader
  /// threads start, detach after they stop. The cache must outlive every
  /// OpenSnapshot call made while attached.
  void set_view_cache(SnapshotViewCache* cache) { view_cache_ = cache; }

  /// The epoch registry backing PinEpoch — the service layer hooks its
  /// view cache into retirement notifications here, and tests observe
  /// pin counts / file reachability.
  const std::shared_ptr<EpochRegistry>& epoch_registry() const {
    return registry_;
  }

  /// Committed journal length of the current epoch (what a pin taken now
  /// would capture).
  std::uint64_t durable_journal_bytes() const {
    return wal_.committed_bytes();
  }

  // --- Paths (for tests and tooling) -------------------------------------
  static std::string ManifestPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir,
                                  std::uint64_t epoch) {
    return EpochSnapshotPath(dir, epoch);
  }
  static std::string DeltaPath(const std::string& dir, std::uint64_t epoch) {
    return EpochDeltaPath(dir, epoch);
  }
  static std::string JournalPath(const std::string& dir,
                                 std::uint64_t epoch) {
    return EpochJournalPath(dir, epoch);
  }

 private:
  DurableDocumentStore(std::string dir, LabeledDocument doc,
                       WriteAheadLog wal, std::uint64_t epoch,
                       Options options, Vfs* vfs);

  /// Resolved state of one epoch's snapshot/delta chain, before journal
  /// replay, plus the chain links for registry bookkeeping.
  struct EpochChain {
    CatalogState state;
    struct Link {
      std::uint64_t epoch = 0;
      bool is_delta = false;
      std::uint64_t base_epoch = 0;
    };
    /// Current epoch first, full-snapshot base last.
    std::vector<Link> links;
  };
  static Result<EpochChain> LoadEpochChain(Vfs& vfs, const std::string& dir,
                                           std::uint64_t epoch);

  /// Journals one insert (kInsert + kScRewrite verification frame).
  Status JournalInsert(WalRecord::Op op, std::uint64_t anchor_self,
                       std::uint64_t cursor_before, NodeId fresh,
                       std::string_view tag);

  /// Rebuilds the exact document state a pin captured: the epoch's
  /// snapshot/delta chain plus the committed journal prefix — the
  /// heap-mode materialization body of OpenSnapshot.
  Result<LabeledDocument> MaterializePinned(const EpochPin& pin) const;

  /// Builds the shared view for a pinned point: an arena-backed view over
  /// the epoch's catalog image when the epoch is sealed and eligible
  /// (see Options::arena_sealed_views), else a materialized document.
  Result<std::shared_ptr<const EpochView>> MaterializeView(
      const EpochPin& pin) const;

  /// Rebuilds the base diff index from the rows/SC state the current
  /// epoch's files hold (pre-replay at Open, post-checkpoint state at
  /// Checkpoint).
  void ResetBaseIndex(const std::vector<CatalogRow>& rows,
                      const ScTable& sc_table);

  /// Enters read-only quarantine: discards un-committed journal frames,
  /// rolls the in-memory document back to the last durable state (chain +
  /// committed journal prefix), and records `cause` in quarantine_.
  void EnterQuarantine(const Status& cause);

  /// Unlinks epoch files in `dir` that no epoch of the live chain owns
  /// (debris of checkpoints that failed before their MANIFEST swing).
  static void SweepStrays(Vfs& vfs, const std::string& dir,
                          const EpochChain& chain);

  std::string dir_;
  LabeledDocument doc_;
  WriteAheadLog wal_;
  std::uint64_t epoch_ = 0;
  Options options_;
  Vfs* vfs_ = nullptr;
  RecoveryStats recovery_stats_;
  std::shared_ptr<EpochRegistry> registry_;
  /// Optional materialized-view cache OpenSnapshot routes through.
  SnapshotViewCache* view_cache_ = nullptr;
  /// Ok while healthy; kUnavailable (with cause) once quarantined.
  Status quarantine_;
  /// Diff base for delta checkpoints: the current epoch's on-disk state.
  BaseRowIndex base_index_;
  std::vector<std::uint64_t> base_sc_hashes_;
  int chain_len_ = 0;
};

}  // namespace primelabel

#endif  // PRIMELABEL_CORPUS_DURABLE_DOCUMENT_STORE_H_
