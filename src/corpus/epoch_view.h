#ifndef PRIMELABEL_CORPUS_EPOCH_VIEW_H_
#define PRIMELABEL_CORPUS_EPOCH_VIEW_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "corpus/labeled_document.h"
#include "store/catalog.h"
#include "store/label_table.h"
#include "util/status.h"

namespace primelabel {

/// A frozen epoch's read surface: the (label table, structure oracle)
/// pair every snapshot query runs against, in one of two storage modes.
///
/// *Heap* mode wraps a fully materialized LabeledDocument — the shape
/// journal replay produces, and the only shape that can serve an epoch
/// with committed journal frames on top of its snapshot.
///
/// *Arena* mode wraps an arena-backed LoadedCatalog (OpenCatalogMapped
/// over a sealed epoch's v4 image): labels, SC values and fingerprints
/// stay in the catalog's columns — typically an mmap the kernel shares
/// across views — and only the row metadata (tags, parents, attributes)
/// lives on the heap, inside the LabelTable built from the catalog rows.
/// No BigInt is ever allocated on the query path.
///
/// Both modes answer through the same accessors, and NodeIds coincide
/// (preorder row index == rebuilt-tree arena index), so queries are
/// bit-identical by construction. document() bridges back to the heap
/// shape on demand — arena views materialize it lazily, at most once —
/// for callers that need the full facade (state digests, serialization).
///
/// Immutable after construction; every member is safe to call
/// concurrently. Shared across sessions via shared_ptr<const EpochView>.
class EpochView {
 public:
  /// Heap mode. The document's label table must already be built (the
  /// materializer forces it) so no lazy state is touched under sharing.
  explicit EpochView(LabeledDocument doc);

  /// Arena mode. `catalog` must be arena-backed (PL_CHECKed).
  explicit EpochView(LoadedCatalog catalog);

  EpochView(const EpochView&) = delete;
  EpochView& operator=(const EpochView&) = delete;

  bool arena_backed() const { return catalog_ != nullptr; }

  /// Rows in the view — equals the document's attached node count.
  std::size_t node_count() const;

  /// The frozen structural oracle (ancestry, order, batched kernels).
  const StructureOracle& oracle() const;

  /// The query-ready tag-index table.
  const LabelTable& label_table() const;

  /// Resident bytes of the label store backing this view: arena views
  /// report the catalog image's column bytes (shared, not per-view);
  /// heap views report the per-view BigInt + fingerprint + SC footprint.
  std::size_t label_store_bytes() const;

  /// Evaluates an XPath against the frozen view (document order).
  Result<std::vector<NodeId>> Query(std::string_view xpath,
                                    int num_workers) const;

  /// The view as a full LabeledDocument. Heap views return their wrapped
  /// document; arena views materialize one from the catalog on first call
  /// (thread-safe, built at most once) — the image was digest-verified at
  /// open, so a failed rebuild here is a programming error and aborts.
  const LabeledDocument& document() const;

 private:
  /// Exactly one of catalog_ / doc_ is set at construction; arena views
  /// may additionally fill doc_ lazily through document().
  std::unique_ptr<LoadedCatalog> catalog_;
  std::unique_ptr<LabelTable> table_;  ///< arena mode only
  mutable std::once_flag doc_once_;
  mutable std::unique_ptr<const LabeledDocument> doc_;
  std::size_t heap_label_bytes_ = 0;  ///< heap mode, computed once
};

}  // namespace primelabel

#endif  // PRIMELABEL_CORPUS_EPOCH_VIEW_H_
