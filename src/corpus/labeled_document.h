#ifndef PRIMELABEL_CORPUS_LABELED_DOCUMENT_H_
#define PRIMELABEL_CORPUS_LABELED_DOCUMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/ordered_prime_scheme.h"
#include "durability/vfs.h"
#include "store/catalog.h"
#include "store/label_table.h"
#include "util/status.h"
#include "xml/tree.h"

namespace primelabel {

/// One-stop facade over the full pipeline: parse -> prime-label -> index ->
/// query -> update -> persist. The individual pieces (XmlTree,
/// OrderedPrimeScheme, LabelTable, XPathEvaluator, catalog) stay available
/// for callers who need control; this class wires them correctly for the
/// common case and keeps the label bookkeeping in sync with mutations.
class LabeledDocument {
 public:
  /// Parses and labels a document (kParseError on malformed XML).
  static Result<LabeledDocument> FromXml(std::string_view xml,
                                         int sc_group_size = 5);
  /// Adopts an existing tree and labels it.
  static LabeledDocument FromTree(XmlTree tree, int sc_group_size = 5);
  /// Restores a document persisted with Save: rebuilds the tree (tags,
  /// text, attributes) from the catalog rows and adopts the stored labels
  /// and SC records without relabeling anything — queries and further
  /// updates continue exactly where the saved document left off.
  static Result<LabeledDocument> Load(Vfs& vfs, const std::string& path);
  static Result<LabeledDocument> Load(const std::string& path) {
    return Load(DefaultVfs(), path);
  }

  /// Rebuilds a document from raw catalog rows (preorder, parent by row
  /// index) and an SC table — the shared tail of Load and of
  /// delta-snapshot recovery, which assembles the row set itself.
  /// `fingerprints_valid` says whether the rows' fingerprint fields can be
  /// adopted verbatim (else they are recomputed); `origin` names the
  /// source in error messages.
  static Result<LabeledDocument> FromCatalogRows(std::vector<CatalogRow> rows,
                                                 ScTable sc_table,
                                                 bool fingerprints_valid,
                                                 const std::string& origin);

  LabeledDocument(LabeledDocument&&) = default;
  LabeledDocument& operator=(LabeledDocument&&) = default;

  const XmlTree& tree() const { return *tree_; }
  const OrderedPrimeScheme& scheme() const { return *scheme_; }

  /// The query-ready tag-index table over the current tree. Built lazily:
  /// the first call after a mutation (or construction) rebuilds it and is
  /// NOT thread-safe; afterwards concurrent reads are safe. Snapshot
  /// materialization (durable store / query service) forces this build
  /// before a frozen view is shared across sessions, which is what makes
  /// concurrent Snapshot::Query race-free.
  const LabelTable& label_table() const { return table(); }

  /// Evaluates an XPath (Table 2 subset + attribute predicates + reverse
  /// axes) against the current labels. Results in document order.
  Result<std::vector<NodeId>> Query(std::string_view xpath) const;

  // --- Updates (labels maintained incrementally) -------------------------

  /// Inserts a new element before/after `sibling` or as the last child of
  /// `parent`; labels it and updates the SC table.
  NodeId InsertBefore(NodeId sibling, std::string_view tag);
  NodeId InsertAfter(NodeId sibling, std::string_view tag);
  NodeId AppendChild(NodeId parent, std::string_view tag);
  /// Wraps `node` with a new parent element.
  NodeId Wrap(NodeId node, std::string_view tag);
  /// Detaches `node`'s subtree and releases its order bookkeeping.
  void Delete(NodeId node);

  /// Relabel cost (nodes + SC record updates) of the last update call.
  int last_update_cost() const { return last_update_cost_; }

  // --- Durability hooks (src/durability/) --------------------------------
  // The update journal records, per insert, the prime cursor it was
  // applied at plus the SC accounting it produced; replay restores the
  // cursor before re-applying the op, which makes every replayed label
  // bit-identical to the live run's.

  /// Stream index of the next fresh prime an insertion would draw.
  std::size_t prime_cursor() const { return scheme_->prime_cursor(); }
  /// Pins the prime cursor (journal replay only).
  void set_prime_cursor(std::size_t cursor) {
    scheme_->set_prime_cursor(cursor);
  }
  /// SC-table accounting of the most recent insert (see
  /// OrderedPrimeScheme::last_sc_stats).
  const ScUpdateStats& last_sc_stats() const {
    return scheme_->last_sc_stats();
  }

  /// Persists the document (structure, attributes, labels, SC table) as a
  /// catalog file readable by Load and LoadCatalog.
  Status Save(Vfs& vfs, const std::string& path) const;
  Status Save(const std::string& path) const {
    return Save(DefaultVfs(), path);
  }

  /// The document as catalog rows: one row per attached node in preorder,
  /// parents by row index — the unit both full snapshots and delta
  /// snapshots are built from.
  std::vector<CatalogRow> ToCatalogRows() const;

 private:
  LabeledDocument() = default;
  LabeledDocument(XmlTree tree, int sc_group_size);

  NodeId Finish(NodeId fresh);
  /// Lazily (re)builds the label table after mutations.
  const LabelTable& table() const;

  std::unique_ptr<XmlTree> tree_;
  std::unique_ptr<OrderedPrimeScheme> scheme_;
  mutable std::unique_ptr<LabelTable> table_;
  mutable bool table_dirty_ = true;
  int last_update_cost_ = 0;
};

/// Persists `doc` to `path` — the document-level catalog entry point
/// (equivalent to doc.Save(path)).
Status SaveCatalog(const std::string& path, const LabeledDocument& doc);

}  // namespace primelabel

#endif  // PRIMELABEL_CORPUS_LABELED_DOCUMENT_H_
