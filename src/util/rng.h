#ifndef PRIMELABEL_UTIL_RNG_H_
#define PRIMELABEL_UTIL_RNG_H_

#include <cstdint>

namespace primelabel {

/// Deterministic 64-bit PRNG (SplitMix64). Used instead of <random>
/// distributions so generated datasets are bit-identical across platforms
/// and standard-library versions — experiment outputs must be reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  /// True with probability `percent`/100.
  bool Chance(unsigned percent) { return Next() % 100 < percent; }

 private:
  std::uint64_t state_;
};

}  // namespace primelabel

#endif  // PRIMELABEL_UTIL_RNG_H_
