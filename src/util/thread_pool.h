#ifndef PRIMELABEL_UTIL_THREAD_POOL_H_
#define PRIMELABEL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace primelabel {

/// Minimal fixed-size worker pool backing the parallel labeling pipeline.
///
/// Design constraints from that use: tasks are coarse (one per subtree below
/// the cut depth), submitted in one burst, and the submitter blocks on Wait()
/// until the burst drains — so a mutex-protected deque is plenty; no
/// work-stealing or lock-free queue is warranted. The pool is cheap enough
/// to construct per LabelTree call (thread startup is microseconds against
/// the bigint work of labeling even a small document).
///
/// Tasks must not throw; the labeling code reports failure through
/// PL_CHECK, which aborts, so there is no exception plumbing.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Enqueues a task. May be called from the owning thread only.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push_back(std::move(task));
      ++unfinished_;
    }
    task_ready_.notify_one();
  }

  /// Blocks until every submitted task has run to completion.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
  }

  int size() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a pool worker (of any ThreadPool).
  /// The parallel batch kernels consult this to run sequentially instead
  /// of fanning out again when a parallel operator calls a parallel
  /// oracle — nested pools would multiply threads without adding cores.
  static bool InWorkerThread() { return t_in_worker_; }

 private:
  void WorkerLoop() {
    t_in_worker_ = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ with an empty queue
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--unfinished_ == 0) all_done_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t unfinished_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  inline static thread_local bool t_in_worker_ = false;
};

}  // namespace primelabel

#endif  // PRIMELABEL_UTIL_THREAD_POOL_H_
