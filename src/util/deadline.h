#ifndef PRIMELABEL_UTIL_DEADLINE_H_
#define PRIMELABEL_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace primelabel {

/// A steady-clock cut-off carried with a request. Default-constructed is
/// unlimited (never expires), so every deadline-aware entry point can take
/// `const Deadline& deadline = {}` and keep deadline-free callers
/// unchanged. Deadlines compose by taking the sooner of two (server
/// default vs. the client's `DEADLINE <ms>` wire prefix).
///
/// A deadline is a cancellation point marker, not a scheduler: work checks
/// `expired()` at its own safe boundaries (between batch chunks, before a
/// poll) and returns kDeadlineExceeded, discarding partial results.
class Deadline {
 public:
  Deadline() = default;

  static Deadline None() { return Deadline(); }
  static Deadline After(std::chrono::milliseconds budget) {
    Deadline d;
    d.has_ = true;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }
  static Deadline AfterMs(std::int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  /// The tighter of the two (an unlimited side never wins).
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    if (a.unlimited()) return b;
    if (b.unlimited()) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  bool unlimited() const { return !has_; }
  bool expired() const {
    return has_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds until expiry, clamped to >= 0; `fallback` when
  /// unlimited. Shaped for poll(2) timeouts: pass fallback = -1 to block.
  int remaining_ms(int fallback = -1) const {
    if (!has_) return fallback;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() <= 0
               ? 0
               : static_cast<int>(
                     left.count() > 3600 * 1000 ? 3600 * 1000 : left.count());
  }

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace primelabel

#endif  // PRIMELABEL_UTIL_DEADLINE_H_
