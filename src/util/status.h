#ifndef PRIMELABEL_UTIL_STATUS_H_
#define PRIMELABEL_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace primelabel {

/// Error category for recoverable failures surfaced through Status/Result.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kParseError,
  kInternal,
  /// The store is quarantined / the resource refuses service; the caller
  /// may retry after the condition clears (e.g. after reopening).
  kUnavailable,
  /// Out of disk/quota (ENOSPC/EDQUOT). Not transient: retrying without
  /// freeing space cannot help.
  kResourceExhausted,
  /// Device-level I/O failure (EIO, short write). Possibly transient.
  kIoError,
  /// Stored bytes fail their integrity check (section digest mismatch,
  /// impossible directory entry): the file is damaged, not merely absent
  /// or from a future format. Retrying cannot help; restore from a good
  /// copy.
  kCorruption,
  /// The request's time budget ran out before the work completed. The
  /// partial work was discarded; the caller may retry with a larger
  /// budget (the system itself is healthy, unlike kUnavailable).
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

/// Lightweight status object for recoverable errors (parse failures,
/// malformed input). Internal invariant violations use PL_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logs and test failure output.
  std::string ToString() const {
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-status result type (minimal StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return parsed_tree;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::ParseError(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the value; the caller must have checked ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line) {
  std::cerr << "PL_CHECK failed: " << expr << " at " << file << ":" << line
            << std::endl;
  std::abort();
}
}  // namespace internal

/// Aborts with a diagnostic when `cond` is false. Used for programmer-error
/// invariants that must hold in release builds too.
#define PL_CHECK(cond)                                          \
  do {                                                          \
    if (!(cond)) {                                              \
      ::primelabel::internal::CheckFail(#cond, __FILE__, __LINE__); \
    }                                                           \
  } while (0)

}  // namespace primelabel

#endif  // PRIMELABEL_UTIL_STATUS_H_
