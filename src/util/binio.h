#ifndef PRIMELABEL_UTIL_BINIO_H_
#define PRIMELABEL_UTIL_BINIO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bigint/bigint.h"

namespace primelabel {

/// Little-endian binary writer into an in-memory buffer. Byte-identical to
/// the stdio writer the catalog used to carry: the move to a buffer is what
/// lets every durable artifact (catalog, delta snapshot, WAL frames) be
/// assembled once and handed to the Vfs as a single write — the unit the
/// fault injector can reason about.
class ByteWriter {
 public:
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

  void Bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }
  void U8(std::uint8_t v) { Bytes(&v, 1); }
  void U32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    Bytes(b, 4);
  }
  void U64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    Bytes(b, 8);
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void String(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Big(const BigInt& v) {
    std::vector<std::uint8_t> bytes = v.ToMagnitudeBytes();
    U32(static_cast<std::uint32_t>(bytes.size()));
    Bytes(bytes.data(), bytes.size());
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Matching reader over a byte span; every accessor reports truncation
/// through ok(), with the same size sanity gates as the stdio reader
/// (strings capped at 256 MiB, label magnitudes at 16 MiB).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  bool Bytes(void* out, std::size_t size) {
    if (ok_ && data_.size() - pos_ >= size) {
      std::memcpy(out, data_.data() + pos_, size);
      pos_ += size;
    } else {
      ok_ = false;
    }
    return ok_;
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint8_t b[4] = {};
    Bytes(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint8_t b[8] = {};
    Bytes(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::string String() {
    std::uint32_t size = U32();
    if (!ok_ || size > (1u << 28) || data_.size() - pos_ < size) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return s;
  }
  BigInt Big() {
    std::uint32_t size = U32();
    if (!ok_ || size > (1u << 24) || data_.size() - pos_ < size) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> bytes(data_.data() + pos_,
                                    data_.data() + pos_ + size);
    pos_ += size;
    return BigInt::FromMagnitudeBytes(bytes);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace primelabel

#endif  // PRIMELABEL_UTIL_BINIO_H_
