// Figure 5: Effect of Depth on Size Label (F = 15).
//
// Maximum self-label size in bits as depth grows from 0 to 10 on a perfect
// tree of fan-out 15. Expected shape: Prefix-1 and Prefix-2 flat in depth,
// Prime grows (its self-labels depend on the total node count, which is
// exponential in depth). Measured values for small depths validate the
// model; deeper trees are model-only (15^10 nodes cannot be materialized).

#include <iostream>

#include "bench/report.h"
#include "labeling/prime_top_down.h"
#include "primes/estimates.h"
#include "sizemodel/size_model.h"
#include "xml/tree.h"

namespace {

primelabel::XmlTree PerfectTree(int depth, int fanout) {
  primelabel::XmlTree tree;
  primelabel::NodeId root = tree.CreateRoot("n");
  std::vector<primelabel::NodeId> level = {root};
  for (int d = 0; d < depth; ++d) {
    std::vector<primelabel::NodeId> next;
    for (primelabel::NodeId parent : level) {
      for (int f = 0; f < fanout; ++f) {
        next.push_back(tree.AppendChild(parent, "n"));
      }
    }
    level = std::move(next);
  }
  return tree;
}

}  // namespace

int main() {
  using namespace primelabel;
  constexpr int kFanout = 15;
  bench::Report report(
      "Figure 5: max self-label size vs depth (perfect tree, F=15)",
      {"depth", "Prefix-1 (model)", "Prefix-2 (model)", "Prime (model)",
       "Prime (measured)"});
  for (int depth = 0; depth <= 10; ++depth) {
    std::string measured = "-";
    if (depth <= 4) {  // 15^4 ~ 54k nodes: still cheap to label
      XmlTree tree = PerfectTree(depth, kFanout);
      PrimeTopDownScheme prime;
      prime.LabelTree(tree);
      int bits = 0;
      tree.Preorder([&](NodeId id, int) {
        bits = std::max(bits, BitLengthU64(prime.self_label(id)));
      });
      measured = std::to_string(bits);
    }
    report.AddRow(depth, Prefix1SelfBits(kFanout), Prefix2SelfBits(kFanout),
                  PrimeSelfBits(depth, kFanout), measured);
  }
  report.Print();
  std::cout << "\nShape check: both prefix schemes are flat in depth; the\n"
               "prime scheme's self-label grows with depth on a perfect\n"
               "tree (Section 3.1).\n";
  return 0;
}
