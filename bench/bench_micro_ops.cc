// Microbenchmarks (google-benchmark) for the primitive operations whose
// costs drive the response-time experiment: per-scheme ancestor tests,
// order lookups, labeling throughput, CRT solving and BigInt arithmetic.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bigint/bigint.h"
#include "bigint/reduction.h"
#include "bigint/simd.h"
#include "core/crt.h"
#include "core/ordered_prime_scheme.h"
#include "core/sc_table.h"
#include "corpus/durable_document_store.h"
#include "corpus/labeled_document.h"
#include "labeling/dewey.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "planner/compiler.h"
#include "planner/executor.h"
#include "primes/prime_source.h"
#include "report.h"
#include "store/catalog.h"
#include "store/plan.h"
#include "xpath/evaluator.h"
#include "util/rng.h"
#include "xml/datasets.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

std::unique_ptr<LabelingScheme> MakeScheme(const std::string& name) {
  if (name == "interval") return std::make_unique<IntervalScheme>();
  if (name == "prefix2") {
    return std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
  }
  if (name == "dewey") return std::make_unique<DeweyScheme>();
  if (name == "prime") return std::make_unique<PrimeOptimizedScheme>();
  return std::make_unique<PrimeTopDownScheme>();
}

const XmlTree& BenchTree() {
  static const XmlTree* tree = [] {
    RandomTreeOptions options;
    options.node_count = 5000;
    options.max_depth = 6;
    options.max_fanout = 12;
    options.seed = 1234;
    return new XmlTree(GenerateRandomTree(options));
  }();
  return *tree;
}

void BM_IsAncestor(benchmark::State& state, const std::string& which) {
  const XmlTree& tree = BenchTree();
  std::unique_ptr<LabelingScheme> scheme = MakeScheme(which);
  scheme->LabelTree(tree);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  Rng rng(1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(nodes[rng.Below(nodes.size())],
                       nodes[rng.Below(nodes.size())]);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(scheme->IsAncestor(x, y));
  }
}
BENCHMARK_CAPTURE(BM_IsAncestor, interval, "interval");
BENCHMARK_CAPTURE(BM_IsAncestor, prefix2, "prefix2");
BENCHMARK_CAPTURE(BM_IsAncestor, dewey, "dewey");
BENCHMARK_CAPTURE(BM_IsAncestor, prime, "prime");
BENCHMARK_CAPTURE(BM_IsAncestor, prime_topdown, "prime-topdown");

void BM_LabelTree(benchmark::State& state, const std::string& which) {
  const XmlTree& tree = BenchTree();
  std::unique_ptr<LabelingScheme> scheme = MakeScheme(which);
  for (auto _ : state) {
    scheme->LabelTree(tree);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.node_count()));
}
BENCHMARK_CAPTURE(BM_LabelTree, interval, "interval");
BENCHMARK_CAPTURE(BM_LabelTree, prefix2, "prefix2");
BENCHMARK_CAPTURE(BM_LabelTree, dewey, "dewey");
BENCHMARK_CAPTURE(BM_LabelTree, prime, "prime");

void BM_OrderedLabelTree(benchmark::State& state) {
  const XmlTree& tree = BenchTree();
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  for (auto _ : state) {
    scheme.LabelTree(tree);  // includes the SC table build
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.node_count()));
}
BENCHMARK(BM_OrderedLabelTree);

void BM_ScOrderLookup(benchmark::State& state) {
  const int group_size = static_cast<int>(state.range(0));
  PrimeSource primes;
  std::vector<std::uint64_t> selves;
  for (std::size_t i = 0; i < 5000; ++i) selves.push_back(primes.PrimeAt(i));
  ScTable table(group_size);
  table.Build(selves);
  Rng rng(3);
  std::size_t i = 0;
  std::vector<std::uint64_t> probe;
  for (int k = 0; k < 1024; ++k) probe.push_back(selves[rng.Below(5000)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.OrderOf(probe[i++ & 1023]));
  }
}
BENCHMARK(BM_ScOrderLookup)->Arg(1)->Arg(5)->Arg(20)->Arg(100);

void BM_ScInsertFront(benchmark::State& state) {
  const int group_size = static_cast<int>(state.range(0));
  PrimeSource primes;
  std::vector<std::uint64_t> selves;
  for (std::size_t i = 0; i < 2000; ++i) selves.push_back(primes.PrimeAt(i));
  std::size_t next = 2000;
  ScTable table(group_size);
  table.Build(selves);
  for (auto _ : state) {
    // Insert near the front: almost every record shifts.
    table.InsertAt(primes.PrimeAt(next++), 100,
                   [&](std::uint64_t) { return primes.PrimeAt(next++); });
  }
}
BENCHMARK(BM_ScInsertFront)->Arg(1)->Arg(5)->Arg(20);

void BM_CrtSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  PrimeSource primes;
  std::vector<Congruence> system;
  for (int i = 0; i < k; ++i) {
    std::uint64_t m = primes.PrimeAt(static_cast<std::size_t>(i) + 100);
    system.push_back({m, static_cast<std::uint64_t>(i)});
  }
  for (auto _ : state) {
    Result<BigInt> solution = SolveCrt(system);
    benchmark::DoNotOptimize(solution.ok());
  }
}
BENCHMARK(BM_CrtSolve)->Arg(2)->Arg(5)->Arg(10)->Arg(50);

void BM_BigIntMul(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  Rng rng(9);
  BigInt a(1), b(1);
  for (int i = 0; i < limbs; ++i) {
    a = (a << 32) + BigInt::FromUint64(rng.Next() >> 32);
    b = (b << 32) + BigInt::FromUint64(rng.Next() >> 32);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Shared fixture for the batched-ancestry and join benchmarks, built once
/// and reused by every batch bench below (so their numbers are directly
/// comparable): a Shakespeare corpus whose own nodes carry 1-3 limb
/// labels, with deep element chains grafted under its acts so chain labels
/// grow by one ~17-bit prime per level, up to ~130 limbs at depth 240.
/// Pairs come in anchor-major runs shaped like the ones JoinBatched emits,
/// stratified so the batch genuinely mixes label widths: a third of the
/// runs keep the original shallow-corpus shape (fingerprints reject nearly
/// everything), the rest anchor mid-chain and mix true same-chain
/// descendants (the division always runs, on wide operands) with
/// cross-chain and shallow rejects.
struct BatchFixture {
  XmlTree tree;
  OrderedPrimeScheme scheme;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  /// Join inputs for the JoinDescendants worker benches: mid-chain and
  /// corpus anchors against a candidate mix drawn from the whole tree.
  std::vector<NodeId> context;
  std::vector<NodeId> candidates;
};

const BatchFixture& ShakespeareBatch() {
  static const BatchFixture* fixture = [] {
    auto* f = new BatchFixture{GenerateShakespeareCorpus(2),
                               OrderedPrimeScheme(/*sc_group_size=*/5),
                               {},
                               {},
                               {}};
    constexpr int kChainDepths[] = {40, 80, 120, 160, 200, 240};
    std::vector<NodeId> acts = f->tree.FindAll("act");
    std::vector<std::vector<NodeId>> chains;
    for (std::size_t c = 0; c < std::size(kChainDepths); ++c) {
      NodeId at = acts[c % acts.size()];
      std::vector<NodeId> chain;
      for (int d = 0; d < kChainDepths[c]; ++d) {
        at = f->tree.AppendChild(at, "deep");
        chain.push_back(at);
      }
      chains.push_back(std::move(chain));
    }
    f->scheme.LabelTree(f->tree);
    std::vector<NodeId> nodes = f->tree.PreorderNodes();
    Rng rng(77);
    for (int anchor = 0; anchor < 64; ++anchor) {
      if (anchor % 3 == 0) {
        // Shallow run: random corpus anchor, random candidates.
        NodeId a = nodes[rng.Below(nodes.size())];
        for (int c = 0; c < 64; ++c) {
          f->pairs.emplace_back(a, nodes[rng.Below(nodes.size())]);
        }
        continue;
      }
      // Deep run: anchor in the upper half of a chain; half the
      // candidates are its true chain descendants, the rest split
      // between another chain and the tree at large.
      const auto& chain = chains[rng.Below(chains.size())];
      std::size_t pos = 4 + rng.Below(chain.size() / 2);
      NodeId a = chain[pos];
      for (int c = 0; c < 64; ++c) {
        NodeId d;
        switch (c % 4) {
          case 0:
          case 1:
            d = chain[pos + 1 + rng.Below(chain.size() - pos - 1)];
            break;
          case 2: {
            const auto& other = chains[rng.Below(chains.size())];
            d = other[rng.Below(other.size())];
            break;
          }
          default:
            d = nodes[rng.Below(nodes.size())];
        }
        f->pairs.emplace_back(a, d);
      }
    }
    for (int i = 0; i < 16; ++i) {
      const auto& chain = chains[static_cast<std::size_t>(i) % chains.size()];
      f->context.push_back(i % 4 == 3 ? nodes[rng.Below(nodes.size())]
                                      : chain[rng.Below(chain.size() / 2)]);
    }
    for (int i = 0; i < 2048; ++i) {
      f->candidates.push_back(nodes[rng.Below(nodes.size())]);
    }
    return f;
  }();
  return *fixture;
}

/// The PR-1 batch path: per-pair Knuth division (with reusable scratch),
/// no fingerprints, no cached divisor constants. Baseline for the fast
/// path below.
void BM_IsAncestorBatchNaive(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  const PrimeTopDownScheme& structure = f.scheme.structure();
  std::vector<std::uint8_t> results;
  BigInt::DivScratch scratch;
  for (auto _ : state) {
    results.clear();
    for (const auto& [a, d] : f.pairs) {
      results.push_back(
          a != d && structure.label(d).IsDivisibleBy(structure.label(a),
                                                     &scratch));
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pairs.size()));
}
BENCHMARK(BM_IsAncestorBatchNaive);

/// The divisibility fast-path engine as shipped: fingerprint rejection,
/// Montgomery constants cached per anchor run, survivors batched through
/// the multi-dividend REDC sweep. Bit-identical results to every pinned
/// variant below (reduction_test asserts it); this is the headline
/// benchmark the check.sh bench-smoke leg guards against regression.
void BM_IsAncestorBatch(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  std::vector<std::uint8_t> results;
  for (auto _ : state) {
    results.clear();
    f.scheme.IsAncestorBatch(f.pairs, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pairs.size()));
}
BENCHMARK(BM_IsAncestorBatch);

/// The same fast path pinned to the portable scalar kernels via the
/// runtime dispatch override. The ratio to BM_IsAncestorBatch isolates
/// what the vector kernels alone buy (results are bit-identical either
/// way).
void BM_IsAncestorBatchScalar(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  simd::SetActiveIsa(simd::Isa::kScalar);
  std::vector<std::uint8_t> results;
  for (auto _ : state) {
    results.clear();
    f.scheme.IsAncestorBatch(f.pairs, &results);
    benchmark::DoNotOptimize(results.data());
  }
  simd::ResetActiveIsa();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pairs.size()));
}
BENCHMARK(BM_IsAncestorBatchScalar);

/// The PR-3 (32-bit-limb era) engine, pinned: no Montgomery sweep —
/// every fingerprint survivor pays a digit-granular truncated-Barrett
/// reduction against the anchor's cached constants, with the dividend
/// split into 32-bit digits per call (that generation's storage format)
/// and no multi-dividend batching. The ratio of this to
/// BM_IsAncestorBatch is the headline number for the engine-v2
/// acceptance bar (>= 2x on mixed-depth Shakespeare labels).
void BM_IsAncestorBatchV1Engine(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  ReciprocalDivisor::SetEngineForTest(ReciprocalDivisor::Engine::kV1);
  std::vector<std::uint8_t> results;
  for (auto _ : state) {
    results.clear();
    f.scheme.IsAncestorBatch(f.pairs, &results);
    benchmark::DoNotOptimize(results.data());
  }
  ReciprocalDivisor::SetEngineForTest(ReciprocalDivisor::Engine::kCurrent);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pairs.size()));
}
BENCHMARK(BM_IsAncestorBatchV1Engine);

/// The full PR-2 fast-path engine, faithfully: scalar kernels AND the
/// reference reduction engine (full-width Barrett products, Knuth/Barrett
/// trial division instead of the Montgomery divisibility sweep). Kept as
/// the long-baseline anchor across engine generations.
void BM_IsAncestorBatchPr2Engine(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  simd::SetActiveIsa(simd::Isa::kScalar);
  ReciprocalDivisor::SetEngineForTest(ReciprocalDivisor::Engine::kPr2);
  std::vector<std::uint8_t> results;
  for (auto _ : state) {
    results.clear();
    f.scheme.IsAncestorBatch(f.pairs, &results);
    benchmark::DoNotOptimize(results.data());
  }
  ReciprocalDivisor::SetEngineForTest(ReciprocalDivisor::Engine::kCurrent);
  simd::ResetActiveIsa();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pairs.size()));
}
BENCHMARK(BM_IsAncestorBatchPr2Engine);

/// The descendant structural join over the shared fixture at several
/// worker counts (1 = the sequential executor). Output is identical at
/// any setting; this measures the fan-out overhead/payoff alone.
void BM_JoinDescendantsWorkers(benchmark::State& state) {
  const BatchFixture& f = ShakespeareBatch();
  QueryContext ctx;
  ctx.oracle = &f.scheme;
  ctx.num_workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<NodeId> out = JoinDescendants(ctx, f.context, f.candidates);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.context.size() * f.candidates.size()));
}
BENCHMARK(BM_JoinDescendantsWorkers)->Arg(1)->Arg(2)->Arg(4);

/// Raw limb-product kernel on the BigInt representation (64-bit limbs):
/// dispatched (digit-view vector kernel when the CPU allows) vs the
/// portable 128-bit-intermediate scalar reference, on n x n limb
/// operands. This is the inner loop of MulSchoolbook and the Karatsuba
/// base case. Args are 64-bit limb counts — halve to compare against
/// pre-v2 digit-count results.
void BM_MulLimbSpans(benchmark::State& state, bool dispatched) {
  const std::size_t limbs = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::uint64_t> a(limbs), b(limbs);
  for (auto& v : a) v = rng.Next();
  for (auto& v : b) v = rng.Next();
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    if (dispatched) {
      simd::MulLimbSpans(a, b, &out);
    } else {
      simd::MulLimbSpansPortable(a, b, &out);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_MulLimbSpans, dispatched, true)
    ->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_MulLimbSpans, portable, false)
    ->Arg(4)->Arg(16)->Arg(64);

/// Batched fingerprint chunk residues (all 7 moduli in one sweep) over a
/// 64-bit limb magnitude, dispatched vs portable. 1024 limbs crosses the
/// digit kernel's 1024-digit power-table block boundary.
void BM_ChunkResidues(benchmark::State& state, bool dispatched) {
  const std::size_t limbs = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<std::uint64_t> magnitude(limbs);
  for (auto& v : magnitude) v = rng.Next();
  magnitude.back() |= std::uint64_t{1} << 63;
  std::uint64_t residues[simd::kChunkCount];
  for (auto _ : state) {
    if (dispatched) {
      simd::ChunkResidues(magnitude, residues);
    } else {
      simd::ChunkResiduesPortable(magnitude, residues);
    }
    benchmark::DoNotOptimize(residues[0]);
  }
}
BENCHMARK_CAPTURE(BM_ChunkResidues, dispatched, true)
    ->Arg(4)->Arg(64)->Arg(1024);
BENCHMARK_CAPTURE(BM_ChunkResidues, portable, false)
    ->Arg(4)->Arg(64)->Arg(1024);

/// Catalog files in every on-disk format, written once from the shared
/// deep-chain Shakespeare fixture: its chain labels reach ~130 limbs,
/// which is where per-row fingerprint recompute (v2), CRT re-derivation
/// (v2/v3) and per-label heap materialization actually cost something.
/// `row_of` maps the fixture's tree NodeIds to preorder row indices — the
/// id vocabulary a LoadedCatalog answers in.
struct CatalogBenchFiles {
  std::string path[5];  ///< indexed by format version (2, 3, 4)
  std::size_t rows = 0;
  std::unordered_map<NodeId, NodeId> row_of;
};

const CatalogBenchFiles& CatalogFiles() {
  static const CatalogBenchFiles* fixture = [] {
    auto* f = new CatalogBenchFiles;
    const BatchFixture& b = ShakespeareBatch();
    std::vector<NodeId> preorder = b.tree.PreorderNodes();
    std::unordered_map<NodeId, std::int64_t> row_of;
    for (std::size_t i = 0; i < preorder.size(); ++i) {
      row_of[preorder[i]] = static_cast<std::int64_t>(i);
      f->row_of[preorder[i]] = static_cast<NodeId>(i);
    }
    std::vector<CatalogRow> rows(preorder.size());
    for (std::size_t i = 0; i < preorder.size(); ++i) {
      NodeId id = preorder[i];
      CatalogRow& row = rows[i];
      row.tag = b.tree.name(id);
      row.is_element = b.tree.IsElement(id);
      NodeId parent = b.tree.parent(id);
      row.parent = parent == kInvalidNodeId ? -1 : row_of.at(parent);
      row.attributes = b.tree.node(id).attributes;
      row.label = b.scheme.structure().label(id);
      row.self = b.scheme.structure().self_label(id);
      row.fingerprint = b.scheme.structure().fingerprint(id);
    }
    f->rows = rows.size();
    std::string base =
        (std::filesystem::temp_directory_path() / "plbench-catalog").string();
    for (int version : {2, 3, 4}) {
      f->path[version] = base + "-v" + std::to_string(version) + ".plc";
      CatalogWriteOptions options;
      options.format_version = version;
      if (!WriteCatalog(DefaultVfs(), f->path[version], rows,
                        b.scheme.sc_table(), options)
               .ok()) {
        std::abort();
      }
    }
    return f;
  }();
  return *fixture;
}

/// Catalog load, v2 file vs v3 file, same rows. v2 recomputes every row's
/// divisibility fingerprint on load; v3 reads them off disk (after one
/// config-hash check), so the ratio is the measured win of that format
/// bump.
void BM_CatalogLoadV2VsV3(benchmark::State& state, int version) {
  const CatalogBenchFiles& fixture = CatalogFiles();
  for (auto _ : state) {
    Result<LoadedCatalog> loaded =
        LoadCatalog(DefaultVfs(), fixture.path[version]);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.rows));
}
BENCHMARK_CAPTURE(BM_CatalogLoadV2VsV3, v2_recompute, 2);
BENCHMARK_CAPTURE(BM_CatalogLoadV2VsV3, v3_persisted, 3);

/// Catalog open, v3 heap load vs v4 — both the heap load (decode every
/// row into BigInts, rebuild the SC table through its per-record CRT
/// solve) and the arena open (digest-verify the image, pun the columns in
/// place, zero BigInts). The v3→v4_arena ratio is the headline load-time
/// win of the format; the label_store_bytes counter next to it is the
/// resident-memory side of the same story (arena bytes are the shared
/// image columns; heap bytes are per-view BigInt allocations).
void BM_CatalogLoadV3VsV4(benchmark::State& state, int version, bool arena) {
  const CatalogBenchFiles& fixture = CatalogFiles();
  std::size_t label_bytes = 0;
  for (auto _ : state) {
    Result<LoadedCatalog> loaded =
        arena ? OpenCatalogMapped(DefaultVfs(), fixture.path[version])
              : LoadCatalog(DefaultVfs(), fixture.path[version]);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      break;
    }
    label_bytes = loaded->label_store_bytes();
    benchmark::DoNotOptimize(label_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.rows));
  state.counters["label_store_bytes"] =
      static_cast<double>(label_bytes);
}
BENCHMARK_CAPTURE(BM_CatalogLoadV3VsV4, v3_heap, 3, false);
BENCHMARK_CAPTURE(BM_CatalogLoadV3VsV4, v4_heap, 4, false);
BENCHMARK_CAPTURE(BM_CatalogLoadV3VsV4, v4_arena, 4, true);

/// The batched-ancestry engine running over an arena-backed catalog: the
/// same pair workload as BM_IsAncestorBatch (tree ids mapped to preorder
/// rows), but every label read is a span into the mmapped v4 image —
/// packed contiguous limbs, no BigInt indirection. The ratio to
/// BM_IsAncestorBatch is the locality win (or cost) of the columnar
/// layout on the hot read path; results are bit-identical.
void BM_IsAncestorBatchArena(benchmark::State& state) {
  static const LoadedCatalog* catalog = [] {
    Result<LoadedCatalog> opened =
        OpenCatalogMapped(DefaultVfs(), CatalogFiles().path[4]);
    if (!opened.ok() || !opened->arena_backed()) std::abort();
    return new LoadedCatalog(std::move(opened.value()));
  }();
  static const std::vector<std::pair<NodeId, NodeId>>* pairs = [] {
    const CatalogBenchFiles& f = CatalogFiles();
    auto* mapped = new std::vector<std::pair<NodeId, NodeId>>;
    for (const auto& [a, d] : ShakespeareBatch().pairs) {
      mapped->emplace_back(f.row_of.at(a), f.row_of.at(d));
    }
    return mapped;
  }();
  std::vector<std::uint8_t> results;
  for (auto _ : state) {
    results.clear();
    catalog->IsAncestorBatch(*pairs, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs->size()));
}
BENCHMARK(BM_IsAncestorBatchArena);

// --- Planned vs walked XPath execution -----------------------------------
//
// The paper's Fig. 15 query battery over a 3-replica Shakespeare corpus,
// run through both execution paths: the step-at-a-time tree-walking
// evaluator (which reparses every query and resorts the context after
// every step) and the plan executor fed precompiled plans — the shape the
// service's plan cache serves on a hit, where parsing is amortized away
// and OrderSort survives only after position predicates. Both paths drive
// the same oracle batch kernels and return bit-identical node vectors
// (planner_test asserts it); the ratio is what the planner buys. The
// check.sh bench-smoke leg regression-gates the planned row.

const char* const kFig15Queries[] = {
    "/play//act[4]",
    "/play//act[3]//Following::act",
    "/play//act//speaker",
    "/act[5]//Following::speech",
    "/speech[4]//Preceding::line",
    "/play//act[3]//line",
    "/play//speech[1]//Following-sibling::speech[3]",
    "/play//speech",
    "/play//line",
};

const LabeledDocument& XPathBenchDoc() {
  static const LabeledDocument* doc = [] {
    return new LabeledDocument(
        LabeledDocument::FromTree(GenerateShakespeareCorpus(3),
                                  /*sc_group_size=*/5));
  }();
  return *doc;
}

void BM_XPathPlannedVsWalked(benchmark::State& state, bool planned) {
  const LabeledDocument& doc = XPathBenchDoc();
  QueryContext ctx;
  ctx.table = &doc.label_table();
  ctx.oracle = &doc.scheme();
  std::vector<PhysicalPlan> plans;
  if (planned) {
    for (const char* query : kFig15Queries) {
      Result<PhysicalPlan> plan = PlanCompiler::Compile(query);
      if (!plan.ok()) {
        state.SkipWithError(plan.status().ToString().c_str());
        return;
      }
      plans.push_back(std::move(plan.value()));
    }
  }
  XPathEvaluator evaluator(&ctx);
  for (auto _ : state) {
    std::size_t total = 0;
    if (planned) {
      for (const PhysicalPlan& plan : plans) {
        total += ExecutePlan(plan, ctx).size();
      }
    } else {
      for (const char* query : kFig15Queries) {
        Result<std::vector<NodeId>> ids = evaluator.Evaluate(query);
        if (!ids.ok()) {
          state.SkipWithError(ids.status().ToString().c_str());
          return;
        }
        total += ids->size();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(std::size(kFig15Queries)));
}
BENCHMARK_CAPTURE(BM_XPathPlannedVsWalked, planned, true);
BENCHMARK_CAPTURE(BM_XPathPlannedVsWalked, walked, false);

void BM_BigIntDivisibility(benchmark::State& state) {
  // The exact shape of the scheme's hot path: ~100-bit label mod ~40-bit
  // ancestor label.
  PrimeSource primes;
  BigInt descendant(1);
  for (int i = 0; i < 5; ++i) {
    descendant *= BigInt::FromUint64(primes.PrimeAt(1000 + static_cast<std::size_t>(i)));
  }
  BigInt ancestor = BigInt::FromUint64(primes.PrimeAt(1000)) *
                    BigInt::FromUint64(primes.PrimeAt(1001));
  for (auto _ : state) {
    benchmark::DoNotOptimize(descendant.IsDivisibleBy(ancestor));
  }
}
BENCHMARK(BM_BigIntDivisibility);

// --- Checkpoint cost: full snapshot vs delta -----------------------------
//
// The claim under test: delta checkpoint cost (time AND bytes) tracks the
// mutation count since the last checkpoint, while full-snapshot cost
// tracks document size. Args are {mutations}; the document is fixed at a
// few hundred nodes so the two regimes separate clearly. The
// checkpoint_bytes counter lands in BENCH_micro_ops.json next to the
// timings.

const std::string& CheckpointBenchXml() {
  static const std::string* xml = [] {
    PlayOptions play;
    play.acts = 4;
    play.scenes_per_act = 4;
    play.min_speeches_per_scene = 4;
    play.max_speeches_per_scene = 8;
    play.seed = 21;
    return new std::string(SerializeXml(GeneratePlay("bench", play)));
  }();
  return *xml;
}

void BM_CheckpointFullVsDelta(benchmark::State& state, bool delta) {
  const int mutations = static_cast<int>(state.range(0));
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bench-checkpoint-" + std::string(delta ? "delta" : "full") + "-" +
        std::to_string(mutations)))
          .string();
  DurableDocumentStore::Options options;
  options.delta_checkpoints = delta;

  std::int64_t total_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, CheckpointBenchXml(), options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      break;
    }
    std::mt19937 rng(static_cast<unsigned>(mutations));
    for (int i = 0; i < mutations; ++i) {
      std::vector<NodeId> elements;
      store->document().tree().Preorder([&](NodeId id, int) {
        if (id != store->document().tree().root() &&
            store->document().tree().IsElement(id)) {
          elements.push_back(id);
        }
      });
      NodeId anchor = elements[rng() % elements.size()];
      switch (rng() % 3) {
        case 0: (void)store->InsertAfter(anchor, "ia"); break;
        case 1: (void)store->AppendChild(anchor, "ac"); break;
        case 2: (void)store->Wrap(anchor, "wr"); break;
      }
    }
    state.ResumeTiming();

    Status checkpointed = store->Checkpoint();

    state.PauseTiming();
    if (!checkpointed.ok()) {
      state.SkipWithError(checkpointed.ToString().c_str());
      break;
    }
    const std::string artifact =
        std::filesystem::exists(DurableDocumentStore::DeltaPath(dir, 1))
            ? DurableDocumentStore::DeltaPath(dir, 1)
            : DurableDocumentStore::SnapshotPath(dir, 1);
    total_bytes +=
        static_cast<std::int64_t>(std::filesystem::file_size(artifact, ec));
    state.ResumeTiming();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  state.counters["checkpoint_bytes"] = benchmark::Counter(
      static_cast<double>(total_bytes), benchmark::Counter::kAvgIterations);
  state.counters["mutations"] = static_cast<double>(mutations);
}
BENCHMARK_CAPTURE(BM_CheckpointFullVsDelta, delta, true)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Iterations(20);
BENCHMARK_CAPTURE(BM_CheckpointFullVsDelta, full, false)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Iterations(20);

}  // namespace

namespace bench_main {

/// Splices "peak_rss_kb" into the context block of an already-written
/// google-benchmark JSON. The framework streams the context at run START,
/// but the high-water mark worth tracking is the one AFTER the fixtures
/// and benchmarks ran — so the emitter can't provide it and we patch it
/// in post-hoc. Best-effort: a file we can't parse is left untouched.
void PatchPeakRssContext(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string anchor = "\"context\": {";
  const std::size_t at = json.find(anchor);
  if (at == std::string::npos) return;
  const std::string insert = "\n    \"peak_rss_kb\": " +
                             std::to_string(primelabel::bench::PeakRssKb()) +
                             ",";
  json.insert(at + anchor.size(), insert);
  std::ofstream out(path, std::ios::trunc);
  out << json;
}

}  // namespace bench_main
}  // namespace primelabel

// Custom main instead of BENCHMARK_MAIN(): every run also writes the full
// google-benchmark JSON to BENCH_micro_ops.json in the working directory,
// so speedup ratios (fast path vs naive) can be checked by scripts. The
// --quick flag (used by the scripts/check.sh bench-smoke leg) restricts
// the run to the IsAncestorBatch family and the planned/walked XPath pair
// at a short min-time with 7 repetitions, and the regression check reads
// the median aggregate:
// sub-0.1s repetitions measure up to ~30% slow and noisy (frequency
// ramp, steal bursts), while median-of-7 at 0.1s reproduces the full
// run's number within a few percent. Enough to validate the JSON schema
// and catch gross regressions without paying for the full suite.
int main(int argc, char** argv) {
  // Default the JSON sink unless the caller picked their own --benchmark_out.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_ops.json";
  std::string format_flag = "--benchmark_out_format=json";
  std::string quick_filter =
      "--benchmark_filter=BM_IsAncestorBatch|BM_XPathPlannedVsWalked";
  std::string quick_min_time = "--benchmark_min_time=0.1";
  std::string quick_reps = "--benchmark_repetitions=7";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  for (char*& arg : args) {
    if (std::string_view(arg) == "--quick") {
      arg = quick_filter.data();
      args.push_back(quick_min_time.data());
      args.push_back(quick_reps.data());
      break;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  // Dispatch metadata lands in the JSON "context" block so two result
  // files can be checked for comparability (same ISA, same crossover,
  // same thread budget) before their ratios are trusted.
  namespace simd = primelabel::simd;
  benchmark::AddCustomContext("detected_isa",
                              simd::IsaName(simd::DetectedIsa()));
  benchmark::AddCustomContext("active_isa", simd::IsaName(simd::ActiveIsa()));
  benchmark::AddCustomContext(
      "vector_kernels_compiled_in",
      simd::VectorKernelsCompiledIn() ? "true" : "false");
  benchmark::AddCustomContext(
      "barrett_min_limbs",
      std::to_string(primelabel::ReciprocalDivisor::BarrettMinLimbs()));
  benchmark::AddCustomContext(
      "vector_min_limbs_full", std::to_string(simd::VectorMinLimbsFull()));
  benchmark::AddCustomContext(
      "vector_min_limbs_partial",
      std::to_string(simd::VectorMinLimbsPartial()));
  benchmark::AddCustomContext("vector_min_limbs_64",
                              std::to_string(simd::VectorMinLimbs64()));
  benchmark::AddCustomContext("redc_batch_min_limbs",
                              std::to_string(simd::RedcBatchMinLimbs()));
  benchmark::AddCustomContext(
      "hardware_threads", std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext(
      "catalog_format_version",
      std::to_string(primelabel::kCatalogFormatVersion));
  benchmark::AddCustomContext("git_sha", primelabel::bench::BuildGitSha());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The context block is streamed at run start; the peak-RSS high-water
  // mark is only meaningful after the run, so patch it into the file now.
  std::string out_path = "BENCH_micro_ops.json";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.starts_with("--benchmark_out=")) {
      out_path = std::string(arg.substr(std::string_view("--benchmark_out=").size()));
    }
  }
  primelabel::bench_main::PatchPeakRssContext(out_path);
  if (!has_out) {
    std::cout << "Machine-readable results: BENCH_micro_ops.json\n";
  }
  return 0;
}
