// Figure 4: Effect of Fan-out on Size Label (D = 2).
//
// Maximum self-label size in bits as fan-out grows from 1 to 50 on a
// perfect tree of depth 2, for Prefix-1, Prefix-2 and Prime. Expected
// shape: Prefix-1 linear in F, Prefix-2 ~ 4 log2 F, Prime nearly flat.
// Alongside the closed-form model we label an actual perfect tree and
// report the measured maximum self-label bits, validating the model.

#include <iostream>

#include "bench/report.h"
#include "labeling/prefix.h"
#include "labeling/prime_top_down.h"
#include "primes/estimates.h"
#include "sizemodel/size_model.h"
#include "xml/tree.h"

namespace {

primelabel::XmlTree PerfectTree(int depth, int fanout) {
  primelabel::XmlTree tree;
  primelabel::NodeId root = tree.CreateRoot("n");
  std::vector<primelabel::NodeId> level = {root};
  for (int d = 0; d < depth; ++d) {
    std::vector<primelabel::NodeId> next;
    for (primelabel::NodeId parent : level) {
      for (int f = 0; f < fanout; ++f) {
        next.push_back(tree.AppendChild(parent, "n"));
      }
    }
    level = std::move(next);
  }
  return tree;
}

}  // namespace

int main() {
  using namespace primelabel;
  constexpr int kDepth = 2;
  bench::Report report(
      "Figure 4: max self-label size vs fan-out (perfect tree, D=2)",
      {"fan-out", "Prefix-1 (model)", "Prefix-2 (model)", "Prime (model)",
       "Prime (measured)"});
  for (int fanout : {1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}) {
    XmlTree tree = PerfectTree(kDepth, fanout);
    PrimeTopDownScheme prime;
    prime.LabelTree(tree);
    // Measured max self-label bits: the largest prime handed out.
    int measured = 0;
    tree.Preorder([&](NodeId id, int) {
      measured = std::max(measured, BitLengthU64(prime.self_label(id)));
    });
    report.AddRow(fanout, Prefix1SelfBits(fanout), Prefix2SelfBits(fanout),
                  PrimeSelfBits(kDepth, fanout), measured);
  }
  report.Print();
  std::cout << "\nShape check: Prefix-1 grows linearly with fan-out; the\n"
               "prime scheme's self-label is 'hardly affected by the\n"
               "increase in fan-out' (Section 3.1).\n";
  return 0;
}
