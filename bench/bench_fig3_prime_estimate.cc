// Figure 3: Actual vs. Estimated Prime Number.
//
// Plots (as table rows) the bit length of the n-th actual prime against the
// log2(n ln n) estimate used by the size model, for n up to 10,000 — the
// paper's point being that the bit-length error stays within a fraction of
// a bit even though the absolute estimate fluctuates.

#include <cmath>
#include <iostream>

#include "bench/report.h"
#include "primes/estimates.h"
#include "primes/prime_source.h"

int main() {
  using namespace primelabel;
  PrimeSource primes;
  bench::Report report(
      "Figure 3: bit length of the n-th prime, actual vs estimated",
      {"n", "actual prime", "actual bits", "estimated bits", "error (bits)"});
  double max_error = 0.0;
  double max_error_all = 0.0;
  for (std::uint64_t n = 1; n <= 10000; ++n) {
    std::uint64_t p = primes.PrimeAt(n - 1);
    int actual_bits = BitLengthU64(p);
    double estimated_bits = EstimatedNthPrimeBits(n);
    double error = std::abs(estimated_bits - actual_bits);
    max_error_all = std::max(max_error_all, error);
    if (n >= 100) max_error = std::max(max_error, error);
    if (n == 1 || n % 1000 == 0 || n == 10 || n == 100) {
      report.AddRow(n, p, actual_bits, estimated_bits, error);
    }
  }
  report.Print();
  std::cout << "\nMax |error| over n in [100, 10000]: " << max_error
            << " bits (paper: the curves in Figure 3 are nearly "
               "indistinguishable).\n"
            << "Max |error| over all n: " << max_error_all << " bits.\n";
  return 0;
}
