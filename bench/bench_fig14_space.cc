// Figure 14: Space Requirements for the Various Labeling Schemes.
//
// Fixed-length label size (max bits over the dataset) for Interval, Prime
// (optimized) and Prefix-2 on D1-D9. Expected shape: Interval smallest
// everywhere; Prime beats Prefix-2 on most datasets, especially the
// huge-fan-out D4 (Actor); Prefix-2 wins on the deep, low-fan-out D7
// (NASA).

#include <iostream>

#include "bench/report.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "xml/datasets.h"

int main() {
  using namespace primelabel;
  bench::Report report(
      "Figure 14: fixed-length label size per scheme (max bits)",
      {"Dataset", "Interval", "Prime", "Prefix-2", "winner (dynamic)"});
  int prime_wins = 0;
  int prefix_wins = 0;
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    XmlTree tree = GenerateDataset(spec);
    IntervalScheme interval;
    interval.LabelTree(tree);
    PrimeOptimizedScheme prime;
    prime.LabelTree(tree);
    PrefixScheme prefix2(PrefixVariant::kBinary);
    prefix2.LabelTree(tree);
    const char* winner =
        prime.MaxLabelBits() <= prefix2.MaxLabelBits() ? "prime" : "prefix-2";
    (prime.MaxLabelBits() <= prefix2.MaxLabelBits() ? prime_wins
                                                    : prefix_wins)++;
    report.AddRow(spec.id, interval.MaxLabelBits(), prime.MaxLabelBits(),
                  prefix2.MaxLabelBits(), winner);
  }
  report.Print();
  std::cout << "\nPrime is the most compact dynamic scheme on " << prime_wins
            << "/9 datasets; prefix-2 wins on " << prefix_wins
            << " (the paper highlights D7/NASA as prefix-friendly and\n"
               "D4/Actor as prime-friendly).\n";
  return 0;
}
