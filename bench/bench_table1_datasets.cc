// Table 1: Characteristics of Datasets.
//
// The paper lists nine Niagara datasets with their maximum node counts. We
// regenerate synthetic stand-ins with the published counts and report the
// full structural profile (depth, fan-out) our generators produce, since
// those drive every other experiment.

#include <iostream>

#include "bench/report.h"
#include "xml/datasets.h"
#include "xml/stats.h"

int main() {
  using namespace primelabel;
  bench::Report report(
      "Table 1: Characteristics of Datasets (paper target vs generated)",
      {"Dataset", "Topic", "Paper max nodes", "Generated nodes", "Depth",
       "Max fan-out", "Avg fan-out", "Leaves"});
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    XmlTree tree = GenerateDataset(spec);
    TreeStats stats = ComputeStats(tree);
    report.AddRow(spec.id, spec.topic, spec.target_nodes, stats.node_count,
                  stats.max_depth, stats.max_fanout, stats.avg_fanout,
                  stats.leaf_count);
  }
  report.Print();
  std::cout << "\nShape check: D4 (Actor) carries the corpus-max fan-out;\n"
               "D7 (NASA) is the deepest, low-fan-out document.\n";
  return 0;
}
