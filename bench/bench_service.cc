// Query-service throughput/latency bench: N concurrent sessions issuing
// XPath requests against shared epoch snapshots of one in-process
// QueryService, with and without a concurrent writer. Reports throughput
// and p50/p99 per-request latency at 1/4/16 sessions, plus the view-cache
// hit rate — the number that justifies the materialized-view cache over
// materializing a fresh view per call.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/report.h"
#include "service/query_service.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

using namespace primelabel;
using namespace primelabel::bench;

namespace {

using Clock = std::chrono::steady_clock;

std::string BenchPlayXml() {
  PlayOptions options;
  options.acts = 4;
  options.scenes_per_act = 4;
  options.min_speeches_per_scene = 4;
  options.max_speeches_per_scene = 8;
  options.seed = 5;
  return SerializeXml(GeneratePlay("bench", options));
}

struct RunResult {
  double throughput_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t requests = 0;
  std::uint64_t materializations = 0;
  std::uint64_t snapshot_opens = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

/// Runs `num_sessions` reader threads for `requests_per_session` requests
/// each (SNAP every 16th request, XPath otherwise); with `with_writer`, a
/// writer thread mutates and checkpoints throughout.
RunResult RunLoad(const std::string& dir, int num_sessions,
                  int requests_per_session, bool with_writer) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, BenchPlayXml());
  if (!store.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 store.status().ToString().c_str());
    return {};
  }
  QueryService::Options options;
  options.max_sessions = static_cast<std::size_t>(num_sessions);
  QueryService service(std::move(store.value()), options);

  const char* queries[] = {"//speech", "/play/act//speaker",
                           "//scene/speech/line", "//act"};

  std::atomic<bool> stop_writer{false};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      std::mt19937 rng(77);
      DurableDocumentStore& target = service.store();
      int i = 0;
      while (!stop_writer.load()) {
        std::vector<NodeId> elements;
        target.document().tree().Preorder([&](NodeId id, int) {
          if (id != target.document().tree().root() &&
              target.document().tree().IsElement(id)) {
            elements.push_back(id);
          }
        });
        if (!target.AppendChild(elements[rng() % elements.size()], "w")
                 .ok()) {
          break;
        }
        if (++i % 32 == 0 && !target.Checkpoint().ok()) break;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(num_sessions));
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s] {
      Result<Session> session = service.OpenSession();
      if (!session.ok()) return;
      Result<Snapshot> snap = session->OpenSnapshot();
      if (!snap.ok()) return;
      std::mt19937 rng(static_cast<unsigned>(1000 + s));
      latencies[static_cast<std::size_t>(s)].reserve(
          static_cast<std::size_t>(requests_per_session));
      for (int i = 0; i < requests_per_session; ++i) {
        const auto t0 = Clock::now();
        if (i % 16 == 15) {
          Result<Snapshot> fresh = session->OpenSnapshot();
          if (fresh.ok()) snap = std::move(fresh);
        } else {
          Result<std::vector<NodeId>> ids =
              session->Query(*snap, queries[rng() % 4]);
          if (!ids.ok()) return;
        }
        const auto t1 = Clock::now();
        latencies[static_cast<std::size_t>(s)].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  stop_writer.store(true);
  if (writer.joinable()) writer.join();

  std::vector<double> all;
  for (const auto& per_session : latencies) {
    all.insert(all.end(), per_session.begin(), per_session.end());
  }
  std::sort(all.begin(), all.end());

  RunResult result;
  result.requests = all.size();
  result.throughput_qps =
      elapsed_s > 0 ? static_cast<double>(all.size()) / elapsed_s : 0;
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  const EpochViewCache::Stats stats = service.view_cache().stats();
  result.materializations = stats.misses;
  result.snapshot_opens = stats.hits + stats.misses;
  std::filesystem::remove_all(dir, ec);
  return result;
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench-query-service")
          .string();
  const int kRequests = 400;

  std::vector<Report> reports;
  reports.reserve(2);
  for (bool with_writer : {false, true}) {
    Report report(
        with_writer
            ? "Query service under load (writer committing + checkpointing)"
            : "Query service under load (read-only)",
        {"sessions", "requests", "throughput qps", "p50 us", "p99 us",
         "materializations", "snapshot opens"});
    for (int sessions : {1, 4, 16}) {
      RunResult r = RunLoad(dir, sessions, kRequests, with_writer);
      report.AddRow(sessions, r.requests, r.throughput_qps, r.p50_us,
                    r.p99_us, r.materializations, r.snapshot_opens);
    }
    report.Print();
    reports.push_back(std::move(report));
  }

  std::vector<const Report*> pointers;
  for (const Report& report : reports) pointers.push_back(&report);
  const std::string path = WriteBenchJson("query_service", pointers);
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
