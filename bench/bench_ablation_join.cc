// Ablation: nested-loop vs merge (stack-tree) structural join.
//
// The paper's SQL translation evaluates ancestor-descendant steps as
// per-row predicates (a nested loop over the tag-index scan). XML query
// processors of the same era introduced merge-based structural joins that
// exploit document order; this bench quantifies how much of Figure 15's
// join cost is the join algorithm rather than the labeling scheme.

#include <iostream>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "store/label_table.h"
#include "store/plan.h"
#include "store/range_index.h"
#include "xml/shakespeare.h"
#include "xml/stats.h"

int main() {
  using namespace primelabel;
  XmlTree corpus = GenerateShakespeareCorpus(10);
  std::cout << "Corpus: " << ComputeStats(corpus).ToString() << "\n";
  LabelTable table(corpus);

  IntervalScheme interval;
  interval.LabelTree(corpus);
  OrderedPrimeScheme prime;
  prime.LabelTree(corpus);
  PrefixScheme prefix2(PrefixVariant::kBinary);
  prefix2.LabelTree(corpus);
  std::vector<std::uint64_t> rank(corpus.arena_size(), 0);
  {
    std::uint64_t counter = 0;
    corpus.Preorder([&](NodeId id, int) {
      rank[static_cast<std::size_t>(id)] = counter++;
    });
  }

  struct Entry {
    const char* name;
    QueryContext ctx;
  };
  SchemeOracle interval_oracle(
      &interval, [&interval](NodeId id) { return interval.low(id); });
  SchemeOracle prefix_oracle(&prefix2, [&rank](NodeId id) {
    return rank[static_cast<std::size_t>(id)];
  });
  std::vector<Entry> entries(3);
  entries[0].name = "interval";
  entries[0].ctx.oracle = &interval_oracle;
  entries[1].name = "prime";
  entries[1].ctx.oracle = &prime;
  entries[2].name = "prefix-2";
  entries[2].ctx.oracle = &prefix_oracle;
  for (Entry& entry : entries) entry.ctx.table = &table;

  bench::Report report(
      "Ablation: structural join algorithm (act//line over 10 plays)",
      {"Scheme", "Nested ms", "Nested tests", "Merge ms", "Merge tests",
       "Speedup"});
  const std::vector<NodeId>& anchors = table.Rows("act");
  const std::vector<NodeId>& candidates = table.Rows("line");
  for (Entry& entry : entries) {
    entry.ctx.stats = EvalStats{};
    bench::Stopwatch nested_timer;
    std::vector<NodeId> nested =
        JoinDescendants(entry.ctx, anchors, candidates);
    double nested_ms = nested_timer.ElapsedMs();
    std::uint64_t nested_tests = entry.ctx.stats.label_tests;

    entry.ctx.stats = EvalStats{};
    bench::Stopwatch merge_timer;
    std::vector<NodeId> merged =
        JoinDescendantsMerge(entry.ctx, anchors, candidates);
    double merge_ms = merge_timer.ElapsedMs();
    std::uint64_t merge_tests = entry.ctx.stats.label_tests;
    if (merged != nested) {
      std::cerr << "join results differ for " << entry.name << "!\n";
      return 1;
    }
    report.AddRow(entry.name, nested_ms, nested_tests, merge_ms, merge_tests,
                  std::to_string(nested_ms / merge_ms) + "x");
  }
  report.Print();

  // Third strategy, interval only: the XISS-style B+-tree element index —
  // descendants come from one range scan per anchor, no per-row tests.
  RangeIndex range_index(corpus, interval);
  bench::Stopwatch index_timer;
  std::vector<NodeId> via_index;
  for (NodeId anchor : anchors) {
    std::vector<NodeId> part = range_index.DescendantsWithTag(anchor, "line");
    via_index.insert(via_index.end(), part.begin(), part.end());
  }
  double index_ms = index_timer.ElapsedMs();
  std::cout << "\nInterval + B+-tree range index (XISS element index): "
            << index_ms << " ms, " << via_index.size()
            << " rows via range scans, 0 label tests.\n";

  std::cout << "\nThe merge join does O(1) label tests per row instead of\n"
               "O(|context|), compressing the gap between schemes — the\n"
               "per-test cost matters most under the nested loop the\n"
               "paper's SQL translation implies. The range index removes\n"
               "the per-row predicate entirely, which only the interval\n"
               "scheme's containment encoding supports.\n";
  return 0;
}
