// Figure 13: Effect of Optimizations on Space Requirement.
//
// Maximum label size (bits) of the prime number labeling scheme on datasets
// D1-D9 under: Original (plain top-down), Opt1 (reserved small primes for
// top-level nodes), Opt2 (powers of two for leaves, cumulative with Opt1),
// and Opt3 (repeated-path combining, cumulative). Expected shape: Opt1
// limited improvement, Opt2 up to ~63% reduction, Opt3 up to ~83%.

#include <iostream>

#include "bench/report.h"
#include "core/path_combine.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "xml/datasets.h"

int main() {
  using namespace primelabel;
  bench::Report report(
      "Figure 13: prime label size under optimizations (max bits)",
      {"Dataset", "Original", "Opt1", "Opt2", "Opt3", "Opt2 vs Original",
       "Opt3 vs Original"});
  double best_opt2 = 0.0;
  double best_opt3 = 0.0;
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    XmlTree tree = GenerateDataset(spec);

    PrimeTopDownScheme original;
    original.LabelTree(tree);
    int original_bits = original.MaxLabelBits();

    PrimeOptimizedOptions opt1_config;
    opt1_config.reserved_primes = 16;
    opt1_config.power_of_two_leaves = false;
    PrimeOptimizedScheme opt1(opt1_config);
    opt1.LabelTree(tree);

    PrimeOptimizedOptions opt2_config;  // defaults: Opt1 + Opt2
    PrimeOptimizedScheme opt2(opt2_config);
    opt2.LabelTree(tree);

    CombineResult combined = CombineRepeatedPaths(tree);
    PrimeOptimizedScheme opt3(opt2_config);
    opt3.LabelTree(combined.tree);

    double opt2_reduction =
        100.0 * (original_bits - opt2.MaxLabelBits()) / original_bits;
    double opt3_reduction =
        100.0 * (original_bits - opt3.MaxLabelBits()) / original_bits;
    best_opt2 = std::max(best_opt2, opt2_reduction);
    best_opt3 = std::max(best_opt3, opt3_reduction);
    report.AddRow(spec.id, original_bits, opt1.MaxLabelBits(),
                  opt2.MaxLabelBits(), opt3.MaxLabelBits(),
                  std::to_string(static_cast<int>(opt2_reduction)) + "%",
                  std::to_string(static_cast<int>(opt3_reduction)) + "%");
  }
  report.Print();
  std::cout << "\nBest Opt2 reduction: " << static_cast<int>(best_opt2)
            << "% (paper: up to 63%).  Best Opt3 reduction: "
            << static_cast<int>(best_opt3) << "% (paper: up to 83%).\n";
  return 0;
}
