// Table 2 + Figure 15: Test Queries and Response Times.
//
// Runs the paper's nine queries over a replicated Shakespeare-plays corpus
// through Interval, Prime (with SC-table ordering) and Prefix-2, timing
// each. Expected shape: Prime and Interval comparable, Prefix-2 slower
// (per-row prefix "UDF" on long string labels), and the SC-table order
// generation overhead for Prime "not significant".
//
// Corpus substitution: the paper replicates its 37-play dataset 5 times
// (Q1 returns 185 = one act[4] per play). We generate PLAYS plays under one
// root; retrieved-node counts are reported alongside the paper's. Two
// queries are adapted to the canonical play markup (see EXPERIMENTS.md):
// Q3 selects speakers under acts (persona is not nested under act in
// play markup), and Q7 anchors the sibling step at speech[1].

#include <iostream>
#include <vector>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "store/label_table.h"
#include "xml/shakespeare.h"
#include "xml/stats.h"
#include "xpath/evaluator.h"

namespace {

using primelabel::InsertOrder;
using primelabel::LabelingScheme;
using primelabel::NodeId;
using primelabel::PrefixScheme;

/// The paper evaluates the prefix scheme's ancestor test as a DBMS
/// user-defined function: per-row invocation with argument marshalling,
/// "which incurs significant overhead" (Sections 2 and 5.2). This wrapper
/// reproduces that cost profile — each test copies both labels into fresh
/// buffers and goes through a non-inlinable call — while delegating the
/// actual predicate to the real PrefixScheme.
class UdfPrefixScheme : public LabelingScheme {
 public:
  explicit UdfPrefixScheme(PrefixScheme* inner) : inner_(inner) {}

  std::string_view name() const override { return "prefix-2 (UDF)"; }
  void LabelTree(const primelabel::XmlTree& tree) override {
    set_tree(tree);
    inner_->LabelTree(tree);
  }
  bool IsAncestor(NodeId ancestor, NodeId descendant) const override {
    // Marshal the arguments as a UDF boundary would.
    std::string a = inner_->label(ancestor);
    std::string d = inner_->label(descendant);
    return CheckPrefixUdf(a, d);
  }
  bool IsParent(NodeId parent, NodeId child) const override {
    std::string p = inner_->label(parent);
    std::string c = inner_->label(child);
    return CheckPrefixUdf(p, c) &&
           inner_->IsParent(parent, child);  // exact length check inside
  }
  int LabelBits(NodeId id) const override { return inner_->LabelBits(id); }
  std::string LabelString(NodeId id) const override {
    return inner_->LabelString(id);
  }
  int HandleInsert(NodeId new_node, InsertOrder order) override {
    return inner_->HandleInsert(new_node, order);
  }

 private:
  // The "check prefix" routine behind an optimization barrier.
  static bool CheckPrefixUdf(const std::string& ancestor,
                             const std::string& descendant)
      __attribute__((noinline)) {
    return ancestor.size() < descendant.size() &&
           descendant.compare(0, ancestor.size(), ancestor) == 0;
  }

  PrefixScheme* inner_;
};

constexpr int kPlays = 15;

struct QuerySpec {
  const char* id;
  const char* text;
  std::size_t paper_nodes;  // Table 2's "# of nodes retrieved"
};

const QuerySpec kQueries[] = {
    {"Q1", "/play//act[4]", 185},
    {"Q2", "/play//act[3]//Following::act", 370},
    {"Q3", "/play//act//speaker", 969},
    {"Q4", "/act[5]//Following::speech", 60105},
    {"Q5", "/speech[4]//Preceding::line", 66946},
    {"Q6", "/play//act[3]//line", 108500},
    {"Q7", "/play//speech[1]//Following-sibling::speech[3]", 143725},
    {"Q8", "/play//speech", 154755},
    {"Q9", "/play//line", 538955},
};

}  // namespace

int main() {
  using namespace primelabel;
  std::cout << "Building corpus of " << kPlays << " plays..." << std::flush;
  XmlTree corpus = GenerateShakespeareCorpus(kPlays);
  TreeStats stats = ComputeStats(corpus);
  std::cout << " done (" << stats.node_count << " nodes).\n";
  LabelTable table(corpus);

  IntervalScheme interval;
  interval.LabelTree(corpus);
  SchemeOracle interval_oracle(
      &interval, [&interval](NodeId id) { return interval.low(id); });
  QueryContext interval_ctx;
  interval_ctx.table = &table;
  interval_ctx.oracle = &interval_oracle;

  OrderedPrimeScheme prime(/*sc_group_size=*/5);
  {
    bench::Stopwatch label_timer;
    prime.LabelTree(corpus);
    std::cout << "Prime labeling incl. SC table build: "
              << label_timer.ElapsedMs() << " ms\n";
  }
  QueryContext prime_ctx;
  prime_ctx.table = &table;
  prime_ctx.oracle = &prime;

  PrefixScheme prefix2_inner(PrefixVariant::kBinary);
  UdfPrefixScheme prefix2(&prefix2_inner);
  prefix2.LabelTree(corpus);
  // Prefix labels sort lexicographically in document order; the rank is
  // materialized once, as a DBMS would store it with the label.
  std::vector<std::uint64_t> prefix_rank(corpus.arena_size(), 0);
  {
    std::uint64_t counter = 0;
    corpus.Preorder([&](NodeId id, int) {
      prefix_rank[static_cast<std::size_t>(id)] = counter++;
    });
  }
  SchemeOracle prefix_oracle(&prefix2, [&prefix_rank](NodeId id) {
    return prefix_rank[static_cast<std::size_t>(id)];
  });
  QueryContext prefix_ctx;
  prefix_ctx.table = &table;
  prefix_ctx.oracle = &prefix_oracle;

  bench::Report table2("Table 2: test queries (paper counts are for the "
                       "37-play x5 corpus; ours for " +
                           std::to_string(kPlays) + " plays)",
                       {"Query", "XPath", "Paper #nodes", "Our #nodes"});
  bench::Report fig15("Figure 15: response time per scheme (ms)",
                      {"Query", "Interval", "Prime", "Prefix-2",
                       "Prime label tests", "Prime order lookups"});
  // I/O proxy under the fixed-length storage model of Section 3.1: bytes
  // of label data fetched = rows scanned * the scheme's max label size.
  // On the paper's disk-resident DBMS this term dominates response time.
  bench::Report io_proxy(
      "Figure 15 (I/O proxy): label bytes scanned per query (KB)",
      {"Query", "Interval", "Prime", "Prefix-2"});
  double label_bytes[3] = {
      interval.MaxLabelBits() / 8.0,
      prime.MaxLabelBits() / 8.0,
      prefix2.MaxLabelBits() / 8.0,
  };

  for (const QuerySpec& spec : kQueries) {
    double times[3];
    double scanned_kb[3];
    std::size_t result_count = 0;
    QueryContext* contexts[3] = {&interval_ctx, &prime_ctx, &prefix_ctx};
    std::uint64_t prime_tests = 0, prime_orders = 0;
    for (int s = 0; s < 3; ++s) {
      XPathEvaluator evaluator(contexts[s]);
      EvalStats before = contexts[s]->stats;
      bench::Stopwatch timer;
      Result<std::vector<NodeId>> result = evaluator.Evaluate(spec.text);
      times[s] = timer.ElapsedMs();
      if (!result.ok()) {
        std::cerr << spec.id << " failed: " << result.status().ToString()
                  << "\n";
        return 1;
      }
      result_count = result->size();
      scanned_kb[s] =
          static_cast<double>(contexts[s]->stats.rows_scanned -
                              before.rows_scanned) *
          label_bytes[s] / 1024.0;
      if (s == 1) {
        prime_tests = contexts[s]->stats.label_tests - before.label_tests;
        prime_orders =
            contexts[s]->stats.order_lookups - before.order_lookups;
      }
    }
    table2.AddRow(spec.id, spec.text, spec.paper_nodes, result_count);
    fig15.AddRow(spec.id, times[0], times[1], times[2], prime_tests,
                 prime_orders);
    io_proxy.AddRow(spec.id, scanned_kb[0], scanned_kb[1], scanned_kb[2]);
  }
  table2.Print();
  fig15.Print();
  io_proxy.Print();
  std::string json_path =
      bench::WriteBenchJson("fig15_queries", {&table2, &fig15, &io_proxy});
  if (json_path.empty()) {
    std::cerr << "failed to write BENCH_fig15_queries.json\n";
    return 1;
  }
  std::cout << "\nMachine-readable results: " << json_path << "\n";
  std::cout
      << "\nShape check: prefix-2 is slowest on the structural-join-heavy\n"
         "queries (Q3/Q6/Q8/Q9) because of its per-row UDF; prime tracks\n"
         "interval within a small factor, and its SC-table order lookups\n"
         "(Q4/Q5/Q7) stay the same order of magnitude — 'the overhead for\n"
         "prime ... to generate global order via the SC table is not\n"
         "significant' (Section 5.2).\n"
         "I/O-proxy caveat: here the corpus is labeled as ONE document, so\n"
         "prime's labels grow with the 91k-node total; the per-file label\n"
         "sizes the paper stores are measured in Figure 14.\n";
  return 0;
}
