// Ablation: SC-table group size.
//
// Section 4.1 proposes a *list* of SC values instead of one global value
// because "the XML tree may be large, thus requiring a large SC value".
// This bench quantifies the trade-off the paper leaves implicit: larger
// groups mean fewer records to update per order-sensitive insertion but
// bigger CRT values (storage + slower mod), smaller groups the reverse.

#include <iostream>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "xml/shakespeare.h"

int main() {
  using namespace primelabel;
  bench::Report report(
      "Ablation: SC group size vs update cost and SC value size (Hamlet, "
      "insert ACT before act 2)",
      {"Group size", "Records", "Max SC bits", "Relabel count",
       "Build ms", "100k lookups ms"});

  for (int group_size : {1, 2, 5, 10, 20, 50, 100}) {
    XmlTree hamlet = GenerateHamlet();
    OrderedPrimeScheme scheme(group_size);
    bench::Stopwatch build_timer;
    scheme.LabelTree(hamlet);
    double build_ms = build_timer.ElapsedMs();

    int max_sc_bits = 0;
    for (const ScRecord& record : scheme.sc_table().records()) {
      max_sc_bits = std::max(max_sc_bits, record.sc.BitLength());
    }
    std::size_t records = scheme.sc_table().records().size();

    // Order-lookup throughput.
    std::vector<NodeId> nodes = hamlet.PreorderNodes();
    bench::Stopwatch lookup_timer;
    std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink += scheme.OrderOf(nodes[static_cast<std::size_t>(i) %
                                   nodes.size()]);
    }
    double lookup_ms = lookup_timer.ElapsedMs();

    std::vector<NodeId> acts = hamlet.FindAll("act");
    NodeId fresh = hamlet.InsertBefore(acts[1], "act");
    int cost = scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);

    report.AddRow(group_size, records, max_sc_bits, cost, build_ms,
                  lookup_ms);
    if (sink == 42) std::cout << "";  // keep the loop observable
  }
  report.Print();
  std::cout << "\nTrade-off: update cost falls roughly as 1/group-size while\n"
               "the SC value (and each recompute) grows linearly with it;\n"
               "the paper's choice of 5 sits near the knee.\n";
  return 0;
}
