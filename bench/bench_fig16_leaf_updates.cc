// Figure 16: Update on Leaf Nodes.
//
// For XML files of 1,000 to 10,000 nodes, insert a new node under the node
// on the deepest level and count how many nodes must be relabeled per
// scheme. Expected shape (paper): interval grows with document size
// (everything after the insertion point renumbers); prefix relabels 1 (the
// new node); the optimized prime scheme relabels 2 (the new node and its
// previously-leaf parent, whose power-of-two self-label becomes a prime);
// the original top-down prime scheme relabels only the new node.

#include <cmath>
#include <memory>
#include <iostream>

#include "bench/report.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "xml/datasets.h"

namespace {

// The attached node at maximal depth (first such in document order).
primelabel::NodeId DeepestNode(const primelabel::XmlTree& tree) {
  primelabel::NodeId deepest = tree.root();
  int best = -1;
  tree.Preorder([&](primelabel::NodeId id, int depth) {
    if (depth > best) {
      best = depth;
      deepest = id;
    }
  });
  return deepest;
}

}  // namespace

int main() {
  using namespace primelabel;
  bench::Report report(
      "Figure 16: nodes relabeled on a leaf update (insert under the "
      "deepest node)",
      {"Doc nodes", "interval", "log10(interval)", "prime (opt)",
       "prime (original)", "prefix-2"});
  for (std::size_t n = 1000; n <= 10000; n += 1000) {
    RandomTreeOptions options;
    options.node_count = n;
    options.max_depth = 8;
    options.max_fanout = 12;
    options.seed = n;

    // Each scheme gets its own copy of the tree so insertions don't stack.
    int relabels[4];
    for (int s = 0; s < 4; ++s) {
      XmlTree tree = GenerateRandomTree(options);
      NodeId deepest = DeepestNode(tree);
      std::unique_ptr<LabelingScheme> scheme;
      switch (s) {
        case 0:
          scheme = std::make_unique<IntervalScheme>();
          break;
        case 1:
          scheme = std::make_unique<PrimeOptimizedScheme>();
          break;
        case 2:
          scheme = std::make_unique<PrimeTopDownScheme>();
          break;
        default:
          scheme = std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
      }
      scheme->LabelTree(tree);
      NodeId fresh = tree.AppendChild(deepest, "new");
      relabels[s] = scheme->HandleInsert(fresh, InsertOrder::kUnordered);
    }
    report.AddRow(n, relabels[0],
                  std::log10(static_cast<double>(relabels[0])), relabels[1],
                  relabels[2], relabels[3]);
  }
  report.Print();
  std::cout << "\nShape check: interval grows with document size; dynamic\n"
               "schemes are flat — prefix 1 node, optimized prime 2 nodes\n"
               "(new node + its previously-leaf parent), original prime 1.\n";
  return 0;
}
