// Figure 18: Order-Sensitive Updates.
//
// Insert a new ACT element between each pair of consecutive acts of the
// Hamlet stand-in and count, per insertion, the nodes that must be
// relabeled so that labels (or the SC table) still encode document order.
// One SC value maintains the order of 5 nodes, and an SC record update
// counts as one relabeled node, both as in Section 5.4. Expected shape:
// interval and prefix relabel thousands (everything ordered after the new
// act); the prime scheme updates only SC records — roughly a fifth of the
// shifted nodes — and no node labels.

#include <iostream>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "xml/shakespeare.h"
#include "xml/stats.h"

int main() {
  using namespace primelabel;
  XmlTree hamlet = GenerateHamlet();
  std::cout << "Hamlet stand-in: " << ComputeStats(hamlet).ToString() << "\n";

  bench::Report report(
      "Figure 18: nodes to relabel per order-sensitive ACT insertion "
      "(SC group size 5)",
      {"Inserted before act #", "interval", "prefix-2", "prime (SC)"});

  // Each scheme evolves its own copy of the document across the five
  // insertions, as the paper inserts "a new ACT node between each of these
  // nodes in the list".
  XmlTree interval_tree = hamlet;
  XmlTree prefix_tree = hamlet;
  XmlTree prime_tree = hamlet;
  IntervalScheme interval;
  interval.LabelTree(interval_tree);
  PrefixScheme prefix2(PrefixVariant::kBinary);
  prefix2.LabelTree(prefix_tree);
  OrderedPrimeScheme prime(/*sc_group_size=*/5);
  prime.LabelTree(prime_tree);

  long long interval_total = 0, prefix_total = 0, prime_total = 0;
  for (int act = 2; act <= 6; ++act) {
    // Insert before the act at position `act` (appending after the last
    // act for the final update), mirroring "between each" insertion.
    auto insert_new_act = [&](XmlTree& tree) {
      std::vector<NodeId> acts = tree.FindAll("act");
      if (act - 1 < static_cast<int>(acts.size())) {
        return tree.InsertBefore(acts[static_cast<std::size_t>(act - 1)],
                                 "act");
      }
      return tree.InsertAfter(acts.back(), "act");
    };

    NodeId a = insert_new_act(interval_tree);
    int interval_cost = interval.HandleInsert(a, InsertOrder::kDocumentOrder);
    NodeId b = insert_new_act(prefix_tree);
    int prefix_cost = prefix2.HandleInsert(b, InsertOrder::kDocumentOrder);
    NodeId c = insert_new_act(prime_tree);
    int prime_cost = prime.HandleInsert(c, InsertOrder::kDocumentOrder);

    interval_total += interval_cost;
    prefix_total += prefix_cost;
    prime_total += prime_cost;
    report.AddRow(act, interval_cost, prefix_cost, prime_cost);
  }
  report.Print();
  std::cout << "\nTotals over 5 insertions: interval " << interval_total
            << ", prefix-2 " << prefix_total << ", prime " << prime_total
            << ".\nShape check: 'none of the existing labeling schemes is "
               "able to handle\norder-sensitive updates efficiently' — the "
               "prime scheme's SC updates\nare a small fraction of the "
               "interval/prefix relabeling cost.\n";
  return 0;
}
