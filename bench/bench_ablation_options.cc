// Ablations for the optimized scheme's two tuning knobs and the tree
// decomposition depth:
//   1. Opt1 reserved-pool size: how many small primes to hold back for
//      top-level nodes.
//   2. Opt2 leaf-exponent threshold: when to stop using powers of two.
//   3. Decomposition component depth on the deep D7 (NASA) dataset.

#include <iostream>

#include "bench/report.h"
#include "core/decomposed_prime_scheme.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "xml/datasets.h"

int main() {
  using namespace primelabel;

  {
    bench::Report report(
        "Ablation 1: Opt1 reserved primes vs max label bits",
        {"Reserved", "D4 (Actor)", "D8 (Plays)", "D9 (Company)"});
    for (int reserved : {0, 4, 8, 16, 32, 64}) {
      PrimeOptimizedOptions options;
      options.reserved_primes = reserved;
      int bits[3];
      int i = 0;
      for (int dataset : {3, 7, 8}) {
        XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[dataset]);
        PrimeOptimizedScheme scheme(options);
        scheme.LabelTree(tree);
        bits[i++] = scheme.MaxLabelBits();
      }
      report.AddRow(reserved, bits[0], bits[1], bits[2]);
    }
    report.Print();
    std::cout << "Reserving helps documents whose top-level nodes come late\n"
                 "in document order; an oversized pool wastes small primes.\n";
  }

  {
    bench::Report report(
        "Ablation 2: Opt2 leaf exponent threshold vs max label bits",
        {"Threshold (bits)", "D4 (Actor)", "D5 (Car)", "D9 (Company)"});
    for (int threshold : {1, 4, 8, 16, 32, 64, 256}) {
      PrimeOptimizedOptions options;
      options.max_leaf_exponent = threshold;
      int bits[3];
      int i = 0;
      for (int dataset : {3, 4, 8}) {
        XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[dataset]);
        PrimeOptimizedScheme scheme(options);
        scheme.LabelTree(tree);
        bits[i++] = scheme.MaxLabelBits();
      }
      report.AddRow(threshold, bits[0], bits[1], bits[2]);
    }
    report.Print();
    std::cout << "Small thresholds forfeit Opt2; huge ones let wide sibling\n"
                 "lists blow up the label (the D4 regression the threshold\n"
                 "exists to prevent, Section 3.2).\n";
  }

  {
    bench::Report report(
        "Ablation 3: decomposition depth on D7 (NASA) vs label bits",
        {"Component depth", "Components", "Max label bits",
         "vs undecomposed"});
    XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[6]);
    PrimeTopDownScheme flat;
    flat.LabelTree(tree);
    int flat_bits = flat.MaxLabelBits();
    for (int depth : {1, 2, 3, 4, 6, 8, 16}) {
      DecomposedPrimeScheme scheme(depth);
      scheme.LabelTree(tree);
      int bits = scheme.MaxLabelBits();
      report.AddRow(depth, scheme.component_count(), bits,
                    std::to_string(100 * (flat_bits - bits) / flat_bits) +
                        "%");
    }
    report.Print();
    std::cout << "Undecomposed top-down max label: " << flat_bits
              << " bits. Decomposition bounds the number of prime factors\n"
                 "per label by the component depth (Section 3.2, after "
                 "[10]).\n";
  }
  return 0;
}
