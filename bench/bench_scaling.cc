// Scaling study: labeling time and label growth vs document size for every
// scheme. Not a paper figure, but the measurement a downstream adopter
// asks first: what does labeling a large document cost, and how fast do
// prime labels grow with N (the Section 3.2 concern that the smaller
// primes "are used up").

#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/dewey.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "xml/datasets.h"

namespace {

/// Times LabelTree on `tree` across worker counts and checks every parallel
/// run against the sequential labels — the bench doubles as an end-to-end
/// determinism check on a corpus larger than the unit tests use.
void ParallelLabelingSection(const primelabel::XmlTree& tree,
                             const std::string& which) {
  using namespace primelabel;
  bench::Report report(
      "Parallel LabelTree (" + which + ", " +
          std::to_string(tree.node_count()) + " nodes, " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware threads)",
      {"Workers", "Prime ms", "Speedup", "Prime+SC ms", "Speedup",
       "Identical"});

  auto speedup = [](double base, double ms) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2fx", base / ms);
    return std::string(buffer);
  };

  PrimeTopDownScheme reference;
  reference.LabelTree(tree);
  double base_prime = 0, base_ordered = 0;
  for (int workers : {1, 2, 4, 8}) {
    PrimeTopDownScheme prime;
    prime.set_num_workers(workers);
    bench::Stopwatch prime_timer;
    prime.LabelTree(tree);
    double prime_ms = prime_timer.ElapsedMs();

    OrderedPrimeScheme ordered(/*sc_group_size=*/5);
    ordered.set_num_workers(workers);
    bench::Stopwatch ordered_timer;
    ordered.LabelTree(tree);
    double ordered_ms = ordered_timer.ElapsedMs();

    bool identical = true;
    tree.Preorder([&](NodeId id, int) {
      if (prime.label(id) != reference.label(id) ||
          ordered.structure().label(id) != reference.label(id)) {
        identical = false;
      }
    });
    if (workers == 1) {
      base_prime = prime_ms;
      base_ordered = ordered_ms;
    }
    report.AddRow(workers, prime_ms, speedup(base_prime, prime_ms), ordered_ms,
                  speedup(base_ordered, ordered_ms), identical ? "yes" : "NO");
  }
  report.Print();
}

}  // namespace

int main() {
  using namespace primelabel;
  bench::Report time_report(
      "Scaling: full-document labeling time (ms)",
      {"Nodes", "interval", "prefix-2", "dewey", "prime", "prime+SC"});
  bench::Report size_report(
      "Scaling: max label size (bits)",
      {"Nodes", "interval", "prefix-2", "dewey", "prime"});

  for (std::size_t n : {1000u, 4000u, 16000u, 64000u}) {
    RandomTreeOptions options;
    options.node_count = n;
    options.max_depth = 7;
    options.max_fanout = 16;
    options.seed = n;
    XmlTree tree = GenerateRandomTree(options);

    double times[5];
    int bits[4];
    std::unique_ptr<LabelingScheme> schemes[4] = {
        std::make_unique<IntervalScheme>(),
        std::make_unique<PrefixScheme>(PrefixVariant::kBinary),
        std::make_unique<DeweyScheme>(),
        std::make_unique<PrimeOptimizedScheme>(),
    };
    for (int s = 0; s < 4; ++s) {
      bench::Stopwatch timer;
      schemes[s]->LabelTree(tree);
      times[s] = timer.ElapsedMs();
      bits[s] = schemes[s]->MaxLabelBits();
    }
    OrderedPrimeScheme ordered(/*sc_group_size=*/5);
    bench::Stopwatch timer;
    ordered.LabelTree(tree);
    times[4] = timer.ElapsedMs();

    time_report.AddRow(n, times[0], times[1], times[2], times[3], times[4]);
    size_report.AddRow(n, bits[0], bits[1], bits[2], bits[3]);
  }
  time_report.Print();
  size_report.Print();
  std::cout << "\nLabeling is linear for every scheme; the prime scheme's\n"
               "constant is the bigint product per node, and the SC build\n"
               "adds one CRT solve per group of 5 nodes.\n\n";

  // Parallel labeling on the largest Table 1 dataset (D9 "Company") and on
  // a larger synthetic tree where the per-subtree work is big enough to
  // amortize the fan-out. Labels are asserted bit-identical to the
  // sequential run at every worker count; speedups depend on the machine's
  // core count (a single-core host shows ~1x throughout).
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    if (spec.id == "D9") {
      ParallelLabelingSection(GenerateDataset(spec), spec.id);
    }
  }
  RandomTreeOptions big;
  big.node_count = 200000;
  big.max_depth = 9;
  big.max_fanout = 24;
  big.seed = 99;
  ParallelLabelingSection(GenerateRandomTree(big), "random-200k");
  return 0;
}
