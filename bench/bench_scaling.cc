// Scaling study: labeling time and label growth vs document size for every
// scheme. Not a paper figure, but the measurement a downstream adopter
// asks first: what does labeling a large document cost, and how fast do
// prime labels grow with N (the Section 3.2 concern that the smaller
// primes "are used up").

#include <iostream>
#include <memory>

#include "bench/report.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/dewey.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "xml/datasets.h"

int main() {
  using namespace primelabel;
  bench::Report time_report(
      "Scaling: full-document labeling time (ms)",
      {"Nodes", "interval", "prefix-2", "dewey", "prime", "prime+SC"});
  bench::Report size_report(
      "Scaling: max label size (bits)",
      {"Nodes", "interval", "prefix-2", "dewey", "prime"});

  for (std::size_t n : {1000u, 4000u, 16000u, 64000u}) {
    RandomTreeOptions options;
    options.node_count = n;
    options.max_depth = 7;
    options.max_fanout = 16;
    options.seed = n;
    XmlTree tree = GenerateRandomTree(options);

    double times[5];
    int bits[4];
    std::unique_ptr<LabelingScheme> schemes[4] = {
        std::make_unique<IntervalScheme>(),
        std::make_unique<PrefixScheme>(PrefixVariant::kBinary),
        std::make_unique<DeweyScheme>(),
        std::make_unique<PrimeOptimizedScheme>(),
    };
    for (int s = 0; s < 4; ++s) {
      bench::Stopwatch timer;
      schemes[s]->LabelTree(tree);
      times[s] = timer.ElapsedMs();
      bits[s] = schemes[s]->MaxLabelBits();
    }
    OrderedPrimeScheme ordered(/*sc_group_size=*/5);
    bench::Stopwatch timer;
    ordered.LabelTree(tree);
    times[4] = timer.ElapsedMs();

    time_report.AddRow(n, times[0], times[1], times[2], times[3], times[4]);
    size_report.AddRow(n, bits[0], bits[1], bits[2], bits[3]);
  }
  time_report.Print();
  size_report.Print();
  std::cout << "\nLabeling is linear for every scheme; the prime scheme's\n"
               "constant is the bigint product per node, and the SC build\n"
               "adds one CRT solve per group of 5 nodes.\n";
  return 0;
}
