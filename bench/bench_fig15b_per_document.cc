// Figure 15 / Table 2 companion: per-document evaluation over the paper's
// actual corpus shape — 37 distinct plays replicated 5 times = 185
// documents, each labeled independently (DocumentStore).
//
// This is the configuration under which Table 2's counts read naturally:
// Q1 (/play//act[4]) returns one act per play = 185 nodes, and Q2 returns
// 2 following acts per play = 370 — which is exactly what this bench
// measures. It also shows the per-document label sizes that make the
// prime scheme competitive in storage (compare bench_fig15's single-
// document I/O proxy).

#include <iostream>

#include "bench/report.h"
#include "corpus/document_store.h"
#include "xml/shakespeare.h"

namespace {

struct QuerySpec {
  const char* id;
  const char* text;
  std::size_t paper_nodes;
};

const QuerySpec kQueries[] = {
    {"Q1", "/play//act[4]", 185},
    {"Q2", "/play//act[3]//Following::act", 370},
    {"Q3", "/play//act//speaker", 969},
    {"Q4", "/act[5]//Following::speech", 60105},
    {"Q5", "/speech[4]//Preceding::line", 66946},
    {"Q6", "/play//act[3]//line", 108500},
    {"Q7", "/play//speech[1]//Following-sibling::speech[3]", 143725},
    {"Q8", "/play//speech", 154755},
    {"Q9", "/play//line", 538955},
};

}  // namespace

int main() {
  using namespace primelabel;
  std::cout << "Building 37 plays x 5 replicas = 185 documents..."
            << std::flush;
  DocumentStore store(/*sc_group_size=*/5);
  bench::Stopwatch build_timer;
  for (int replica = 0; replica < 5; ++replica) {
    for (int play = 0; play < 37; ++play) {
      PlayOptions options;
      options.seed = static_cast<std::uint64_t>(play) + 1;
      store.AddDocument(
          "play-" + std::to_string(play) + "-r" + std::to_string(replica),
          GeneratePlay("p", options));
    }
  }
  std::cout << " done: " << store.total_nodes() << " nodes labeled in "
            << build_timer.ElapsedMs() << " ms.\n"
            << "Max per-document prime label: " << store.MaxLabelBits()
            << " bits (vs ~200 bits when the corpus is labeled as one "
               "document).\n";

  bench::Report report(
      "Table 2 / Figure 15 (per-document evaluation, 185 documents)",
      {"Query", "Paper #nodes", "Our #nodes", "Time (ms)", "Label tests",
       "Order lookups"});
  for (const QuerySpec& spec : kQueries) {
    bench::Stopwatch timer;
    Result<DocumentStore::QueryResult> result = store.Query(spec.text);
    double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::cerr << spec.id << ": " << result.status().ToString() << "\n";
      return 1;
    }
    report.AddRow(spec.id, spec.paper_nodes, result->hits.size(), ms,
                  result->stats.label_tests, result->stats.order_lookups);
  }
  report.Print();
  std::cout << "\nQ1 and Q2 match the paper's counts exactly (one act[4]\n"
               "and two following acts per play); Q4 differs because in\n"
               "canonical 5-act plays nothing follows act 5 within its\n"
               "document (see EXPERIMENTS.md).\n";
  return 0;
}
