// Figure 17: Update on Non-Leaf Nodes.
//
// Insert a node as the parent of the first level-4 node (in document
// order) and count relabels. Expected shape (paper): interval relabels
// every node after the insertion point in document order; prefix and prime
// relabel only the descendants of the inserted node — almost identical,
// tiny counts.

#include <cmath>
#include <memory>
#include <iostream>

#include "bench/report.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "xml/datasets.h"

namespace {

primelabel::NodeId FirstNodeAtDepth(const primelabel::XmlTree& tree,
                                    int target) {
  primelabel::NodeId found = primelabel::kInvalidNodeId;
  tree.Preorder([&](primelabel::NodeId id, int depth) {
    if (found == primelabel::kInvalidNodeId && depth == target) found = id;
  });
  return found;
}

}  // namespace

int main() {
  using namespace primelabel;
  bench::Report report(
      "Figure 17: nodes relabeled on a non-leaf update (wrap the first "
      "level-4 node)",
      {"Doc nodes", "interval", "log10(interval)", "prime", "prefix-2",
       "subtree size"});
  for (std::size_t n = 1000; n <= 10000; n += 1000) {
    RandomTreeOptions options;
    options.node_count = n;
    options.max_depth = 8;
    options.max_fanout = 12;
    options.seed = n * 7 + 1;

    int relabels[3];
    std::size_t subtree = 0;
    for (int s = 0; s < 3; ++s) {
      XmlTree tree = GenerateRandomTree(options);
      NodeId target = FirstNodeAtDepth(tree, 4);
      if (target == kInvalidNodeId) target = FirstNodeAtDepth(tree, 3);
      if (s == 0) {
        subtree = 0;
        tree.PreorderFrom(target, 0,
                          [&](NodeId, int) { ++subtree; });
      }
      std::unique_ptr<LabelingScheme> scheme;
      switch (s) {
        case 0:
          scheme = std::make_unique<IntervalScheme>();
          break;
        case 1:
          scheme = std::make_unique<PrimeOptimizedScheme>();
          break;
        default:
          scheme = std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
      }
      scheme->LabelTree(tree);
      NodeId wrapper = tree.WrapNode(target, "wrapper");
      relabels[s] = scheme->HandleInsert(wrapper, InsertOrder::kUnordered);
    }
    report.AddRow(n, relabels[0],
                  std::log10(static_cast<double>(relabels[0])), relabels[1],
                  relabels[2], subtree);
  }
  report.Print();
  std::cout << "\nShape check: interval tracks document size; prime and\n"
               "prefix track only the wrapped subtree ('the descendants of\n"
               "the newly inserted node'), and are almost identical.\n";
  return 0;
}
