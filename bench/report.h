#ifndef PRIMELABEL_BENCH_REPORT_H_
#define PRIMELABEL_BENCH_REPORT_H_

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace primelabel::bench {

/// Plain-text table printer: every bench binary prints the rows/series of
/// its paper table or figure in this format so EXPERIMENTS.md can quote
/// them directly.
class Report {
 public:
  Report(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), headers_(std::move(headers)) {}

  template <typename... Cells>
  void AddRow(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(Format(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    os << "\n=== " << title_ << " ===\n";
    PrintRow(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& row : rows_) PrintRow(os, row, widths);
    os.flush();
  }

 private:
  template <typename T>
  static std::string Format(const T& value) {
    if constexpr (std::is_same_v<T, std::string> ||
                  std::is_convertible_v<T, const char*>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << value;
      return os.str();
    } else {
      return std::to_string(value);
    }
  }

  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << row[c] << " ";
      if (c + 1 < row.size()) os << "|";
    }
    os << "\n";
  }

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Wall-clock stopwatch for the response-time experiments.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Elapsed milliseconds since construction or the last Reset.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace primelabel::bench

#endif  // PRIMELABEL_BENCH_REPORT_H_
