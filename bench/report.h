#ifndef PRIMELABEL_BENCH_REPORT_H_
#define PRIMELABEL_BENCH_REPORT_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bigint/reduction.h"
#include "bigint/simd.h"
#include "store/catalog.h"

// Baked in by the root CMakeLists (git rev-parse --short HEAD); builds
// outside a checkout fall back to "unknown".
#ifndef PRIMELABEL_GIT_SHA
#define PRIMELABEL_GIT_SHA "unknown"
#endif

namespace primelabel::bench {

/// The short git SHA this binary was built from.
inline const char* BuildGitSha() { return PRIMELABEL_GIT_SHA; }

/// Peak resident set size of this process in kilobytes (VmHWM from
/// /proc/self/status), or 0 where that file does not exist. Read at
/// JSON-emission time — i.e. after the benchmarks ran — so it is the true
/// high-water mark of the run, which is what makes memory wins (arena
/// views vs per-view BigInt heaps) trackable next to the throughput
/// numbers.
inline long PeakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

/// Dispatch metadata as a JSON object: which limb-kernel ISA the binary
/// detected and is using, whether the vector kernels were compiled in, the
/// Barrett crossover this machine measured, its thread budget, plus build
/// provenance (git SHA and the catalog format the binary writes). Two
/// BENCH_*.json files are only apples-to-apples when these match, so every
/// emitter embeds them.
inline std::string DispatchMetadataJson() {
  std::ostringstream os;
  os << "{\"detected_isa\": \"" << simd::IsaName(simd::DetectedIsa())
     << "\", \"active_isa\": \"" << simd::IsaName(simd::ActiveIsa())
     << "\", \"vector_kernels_compiled_in\": "
     << (simd::VectorKernelsCompiledIn() ? "true" : "false")
     << ", \"barrett_min_limbs\": " << ReciprocalDivisor::BarrettMinLimbs()
     << ", \"vector_min_limbs_full\": " << simd::VectorMinLimbsFull()
     << ", \"vector_min_limbs_partial\": " << simd::VectorMinLimbsPartial()
     << ", \"vector_min_limbs_64\": " << simd::VectorMinLimbs64()
     << ", \"redc_batch_min_limbs\": " << simd::RedcBatchMinLimbs()
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"peak_rss_kb\": " << PeakRssKb()
     << ", \"catalog_format_version\": " << kCatalogFormatVersion
     << ", \"git_sha\": \"" << BuildGitSha() << "\"}";
  return os.str();
}

/// Plain-text table printer: every bench binary prints the rows/series of
/// its paper table or figure in this format so EXPERIMENTS.md can quote
/// them directly.
class Report {
 public:
  Report(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), headers_(std::move(headers)) {}

  template <typename... Cells>
  void AddRow(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(Format(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    os << "\n=== " << title_ << " ===\n";
    PrintRow(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& row : rows_) PrintRow(os, row, widths);
    os.flush();
  }

  /// Machine-readable form of the same table: one JSON object with the
  /// title, the headers and the formatted row cells. Cells keep the text
  /// rendering of Print so the two outputs never disagree.
  void WriteJson(std::ostream& os) const {
    os << "{\"title\": " << Quote(title_) << ", \"headers\": [";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      os << Quote(headers_[c]);
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r > 0) os << ", ";
      os << "[";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) os << ", ";
        os << Quote(rows_[r][c]);
      }
      os << "]";
    }
    os << "]}";
  }

 private:
  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (char ch : text) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += "\"";
    return out;
  }

  template <typename T>
  static std::string Format(const T& value) {
    if constexpr (std::is_same_v<T, std::string> ||
                  std::is_convertible_v<T, const char*>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << value;
      return os.str();
    } else {
      return std::to_string(value);
    }
  }

  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << row[c] << " ";
      if (c + 1 < row.size()) os << "|";
    }
    os << "\n";
  }

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes every report of a bench binary to `BENCH_<name>.json` in the
/// working directory as {"benchmark": name, "dispatch": {...}, "reports":
/// [...]}, so runs can be diffed and regression-checked by scripts instead
/// of by eyeballing the plain-text tables. Returns the path written, or ""
/// on failure.
inline std::string WriteBenchJson(const std::string& name,
                                  const std::vector<const Report*>& reports) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << "{\"benchmark\": \"" << name
      << "\", \"dispatch\": " << DispatchMetadataJson() << ", \"reports\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ",\n";
    reports[i]->WriteJson(out);
  }
  out << "\n]}\n";
  return out ? path : "";
}

/// Wall-clock stopwatch for the response-time experiments.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Elapsed milliseconds since construction or the last Reset.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace primelabel::bench

#endif  // PRIMELABEL_BENCH_REPORT_H_
