// Related-work demonstration: the floating-point interval scheme (QRS [2])
// "solves" dynamic updates only until the mantissa runs out.
//
// Section 2: "in practice, the representation of a floating point number
// is constrained by the number of bits in the mantissa. Once again, when
// the number of insertions exceeds certain limits, re-labeling is
// necessary." This bench inserts repeatedly at a single position and
// reports how many insertions fit before each forced full relabel, and
// contrasts the prime scheme under the identical workload.

#include <iostream>

#include "bench/report.h"
#include "labeling/float_interval.h"
#include "labeling/gapped_interval.h"
#include "labeling/prime_optimized.h"
#include "xml/datasets.h"

int main() {
  using namespace primelabel;

  constexpr int kInsertions = 500;
  RandomTreeOptions options;
  options.node_count = 1000;
  options.max_depth = 5;
  options.max_fanout = 8;
  options.seed = 3;

  // Hostile-but-realistic workload: always insert before the first child
  // of the root (e.g. prepending newest entries to a feed).
  XmlTree float_tree = GenerateRandomTree(options);
  FloatIntervalScheme float_scheme;
  float_scheme.LabelTree(float_tree);
  XmlTree gapped_tree = GenerateRandomTree(options);
  GappedIntervalScheme gapped_scheme(/*gap=*/1024);
  gapped_scheme.LabelTree(gapped_tree);
  XmlTree prime_tree = GenerateRandomTree(options);
  PrimeOptimizedScheme prime_scheme;
  prime_scheme.LabelTree(prime_tree);

  bench::Report report(
      "Float-interval breakdown: prepend-to-first-child workload",
      {"Insertions so far", "Float relabel events", "Float nodes relabeled",
       "Gapped relabel events", "Gapped nodes relabeled",
       "Prime nodes relabeled"});
  long long float_total = 0, gapped_total = 0, prime_total = 0;
  int checkpoints[] = {25, 50, 75, 100, 200, 300, 400, 500};
  int next_checkpoint = 0;
  for (int i = 1; i <= kInsertions; ++i) {
    NodeId f = float_tree.InsertBefore(float_tree.first_child(
                                           float_tree.root()),
                                       "new");
    float_total += float_scheme.HandleInsert(f, InsertOrder::kUnordered);
    NodeId g = gapped_tree.InsertBefore(gapped_tree.first_child(
                                            gapped_tree.root()),
                                        "new");
    gapped_total += gapped_scheme.HandleInsert(g, InsertOrder::kUnordered);
    NodeId p = prime_tree.InsertBefore(prime_tree.first_child(
                                           prime_tree.root()),
                                       "new");
    prime_total += prime_scheme.HandleInsert(p, InsertOrder::kUnordered);
    if (next_checkpoint < 8 && i == checkpoints[next_checkpoint]) {
      report.AddRow(i, float_scheme.relabel_events(), float_total,
                    gapped_scheme.relabel_events(), gapped_total,
                    prime_total);
      ++next_checkpoint;
    }
  }
  report.Print();
  std::cout << "\nEach forced relabel renumbers the whole document (~"
            << float_tree.node_count()
            << " nodes); the prime scheme labels exactly one node per\n"
               "insertion under the identical workload. The first float\n"
               "breakdown arrives after ~50 insertions (one mantissa bit\n"
               "per midpoint split); the gapped integer interval breaks\n"
               "down after ~log2(gap) insertions — reserving space only\n"
               "postpones the inevitable relabeling (Section 2).\n";
  return 0;
}
