#include "xml/sax.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming_labeler.h"
#include "labeling/prime_top_down.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

/// Records events as strings for easy assertions.
class RecordingHandler : public SaxHandler {
 public:
  void StartElement(
      std::string_view tag,
      const std::vector<std::pair<std::string_view, std::string_view>>&
          attributes) override {
    std::string event = "<" + std::string(tag);
    for (const auto& [key, value] : attributes) {
      event += " " + std::string(key) + "=" + std::string(value);
    }
    event += ">";
    events.push_back(std::move(event));
  }
  void EndElement(std::string_view tag) override {
    events.push_back("</" + std::string(tag) + ">");
  }
  void Text(std::string_view text) override {
    events.push_back("#" + std::string(text));
  }

  std::vector<std::string> events;
};

TEST(Sax, EventsInDocumentOrder) {
  RecordingHandler handler;
  Status status =
      ParseXmlSax("<a x=\"1\"><b>hi</b><c/></a>", &handler);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a x=1>", "<b>", "#hi", "</b>", "<c>",
                                      "</c>", "</a>"}));
}

TEST(Sax, EntitiesDecodedInTextAndAttributes) {
  RecordingHandler handler;
  ASSERT_TRUE(ParseXmlSax("<a k=\"x&amp;y\">&lt;&#65;</a>", &handler).ok());
  EXPECT_EQ(handler.events[0], "<a k=x&y>");
  EXPECT_EQ(handler.events[1], "#<A");
}

TEST(Sax, ErrorsMatchDomParser) {
  for (const char* bad : {"", "<a>", "<a></b>", "<a/><b/>", "plain",
                          "<a attr=novalue/>", "<t>&nope;</t>"}) {
    RecordingHandler handler;
    Status sax = ParseXmlSax(bad, &handler);
    Result<XmlTree> dom = ParseXml(bad);
    EXPECT_FALSE(sax.ok()) << bad;
    EXPECT_FALSE(dom.ok()) << bad;
  }
}

TEST(Sax, DomAdapterProducesSameDocuments) {
  // ParseXml is built on the SAX engine; verify on a substantial document
  // that events reconstruct the serialized form exactly.
  XmlTree play = GenerateHamlet();
  std::string xml = SerializeXml(play);
  Result<XmlTree> reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(SerializeXml(*reparsed), xml);
}

TEST(StreamingLabeler, MatchesTreeBasedLabelsOnElementOnlyDocuments) {
  XmlTree play = GenerateHamlet();  // generator emits no text nodes
  std::string xml = SerializeXml(play);

  PrimeTopDownScheme tree_scheme;
  tree_scheme.LabelTree(play);

  std::vector<std::string> streamed_labels;
  Status status = LabelXmlStreaming(
      xml, [&](const StreamingPrimeLabeler::LabeledElement& element) {
        streamed_labels.push_back(element.label->ToDecimalString());
      });
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::vector<std::string> tree_labels;
  play.Preorder([&](NodeId id, int) {
    tree_labels.push_back(tree_scheme.label(id).ToDecimalString());
  });
  EXPECT_EQ(streamed_labels, tree_labels);
}

TEST(StreamingLabeler, ConstantMemoryAcrossAWideDocument) {
  // 1 root + 10k leaf children: the stack never exceeds depth 2.
  std::string xml = "<wide>";
  for (int i = 0; i < 10000; ++i) xml += "<leaf/>";
  xml += "</wide>";
  std::size_t max_stack = 0;
  StreamingPrimeLabeler labeler(nullptr);
  class Probe : public SaxHandler {
   public:
    Probe(StreamingPrimeLabeler* inner, std::size_t* max_stack)
        : inner_(inner), max_stack_(max_stack) {}
    void StartElement(
        std::string_view tag,
        const std::vector<std::pair<std::string_view, std::string_view>>&
            attributes) override {
      inner_->StartElement(tag, attributes);
      *max_stack_ = std::max(*max_stack_, inner_->stack_depth());
    }
    void EndElement(std::string_view tag) override {
      inner_->EndElement(tag);
    }
    void Text(std::string_view text) override { inner_->Text(text); }

   private:
    StreamingPrimeLabeler* inner_;
    std::size_t* max_stack_;
  };
  Probe probe(&labeler, &max_stack);
  ASSERT_TRUE(ParseXmlSax(xml, &probe).ok());
  EXPECT_EQ(labeler.elements_labeled(), 10001u);
  EXPECT_EQ(max_stack, 2u);
  EXPECT_EQ(labeler.stack_depth(), 0u);
}

TEST(StreamingLabeler, EmitsDepthAndSelf) {
  std::vector<int> depths;
  std::vector<std::uint64_t> selves;
  ASSERT_TRUE(LabelXmlStreaming(
                  "<a><b><c/></b><d/></a>",
                  [&](const StreamingPrimeLabeler::LabeledElement& e) {
                    depths.push_back(e.depth);
                    selves.push_back(e.self);
                  })
                  .ok());
  EXPECT_EQ(depths, (std::vector<int>{0, 1, 2, 1}));
  EXPECT_EQ(selves, (std::vector<std::uint64_t>{1, 2, 3, 5}));
}

TEST(StreamingLabeler, ReportsMaxLabelBits) {
  XmlTree play = GenerateHamlet();
  std::string xml = SerializeXml(play);
  StreamingPrimeLabeler labeler(nullptr);
  ASSERT_TRUE(ParseXmlSax(xml, &labeler).ok());
  PrimeTopDownScheme tree_scheme;
  tree_scheme.LabelTree(play);
  EXPECT_EQ(labeler.max_label_bits(), tree_scheme.MaxLabelBits());
  EXPECT_EQ(labeler.elements_labeled(), play.node_count());
}

}  // namespace
}  // namespace primelabel
