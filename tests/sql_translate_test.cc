#include "xpath/sql_translate.h"

#include <gtest/gtest.h>

namespace primelabel {
namespace {

std::string Sql(const std::string& xpath, SqlScheme scheme) {
  Result<std::string> sql = TranslateToSql(xpath, scheme);
  EXPECT_TRUE(sql.ok()) << xpath << ": " << sql.status().ToString();
  return sql.ok() ? sql.value() : std::string();
}

TEST(SqlTranslate, PrimeDescendantUsesModAndParityGuard) {
  std::string sql = Sql("/play//act", SqlScheme::kPrime);
  EXPECT_NE(sql.find("n0.tag = 'play'"), std::string::npos);
  EXPECT_NE(sql.find("n1.tag = 'act'"), std::string::npos);
  EXPECT_NE(sql.find("mod(n1.label, n0.label) = 0"), std::string::npos);
  EXPECT_NE(sql.find("mod(n0.label, 2) = 1"), std::string::npos);
}

TEST(SqlTranslate, IntervalDescendantUsesRangeComparisons) {
  std::string sql = Sql("/play//act", SqlScheme::kInterval);
  EXPECT_NE(sql.find("n0.low < n1.low"), std::string::npos);
  EXPECT_NE(sql.find("n1.high <= n0.high"), std::string::npos);
  EXPECT_EQ(sql.find("mod("), std::string::npos);
}

TEST(SqlTranslate, PrefixDescendantUsesUdf) {
  std::string sql = Sql("/play//act", SqlScheme::kPrefix);
  EXPECT_NE(sql.find("check_prefix(n0.label, n1.label) = 1"),
            std::string::npos);
  EXPECT_NE(sql.find("user-defined function"), std::string::npos);
}

TEST(SqlTranslate, ChildAxisPerScheme) {
  EXPECT_NE(Sql("/a/b", SqlScheme::kPrime).find("n1.label = n0.label * n1.self"),
            std::string::npos);
  EXPECT_NE(Sql("/a/b", SqlScheme::kInterval).find("n1.level = n0.level + 1"),
            std::string::npos);
  EXPECT_NE(Sql("/a/b", SqlScheme::kPrefix)
                .find("length(n1.label) = length(n0.label) + n1.self_length"),
            std::string::npos);
}

TEST(SqlTranslate, FollowingUsesOrderRecovery) {
  std::string prime = Sql("/a//Following::b", SqlScheme::kPrime);
  EXPECT_NE(prime.find("prime_order(n1.self) > prime_order(n0.self)"),
            std::string::npos);
  EXPECT_NE(prime.find("prime_order(self) :="), std::string::npos);
  std::string interval = Sql("/a//Following::b", SqlScheme::kInterval);
  EXPECT_NE(interval.find("n1.low > n0.low"), std::string::npos);
  std::string prefix = Sql("/a//Following::b", SqlScheme::kPrefix);
  EXPECT_NE(prefix.find("n1.label > n0.label"), std::string::npos);
}

TEST(SqlTranslate, PositionBecomesWindowFunction) {
  std::string sql = Sql("/play//act[4]", SqlScheme::kPrime);
  EXPECT_NE(sql.find("row_number() OVER (PARTITION BY n1.parent"),
            std::string::npos);
  EXPECT_NE(sql.find(") = 4"), std::string::npos);
}

TEST(SqlTranslate, AttributePredicateBecomesExistsSubquery) {
  std::string sql = Sql("//speaker[@name='HAMLET']", SqlScheme::kInterval);
  EXPECT_NE(sql.find("EXISTS (SELECT 1 FROM attribute t"), std::string::npos);
  EXPECT_NE(sql.find("t.key = 'name' AND t.value = 'HAMLET'"),
            std::string::npos);
}

TEST(SqlTranslate, SiblingAxesCompareParents) {
  std::string sql =
      Sql("/a//Following-sibling::b", SqlScheme::kInterval);
  EXPECT_NE(sql.find("n1.parent = n0.parent"), std::string::npos);
}

TEST(SqlTranslate, ReverseAxesSwapRoles) {
  std::string sql = Sql("/a//Ancestor::b", SqlScheme::kPrime);
  // The candidate (n1) must divide the anchor (n0).
  EXPECT_NE(sql.find("mod(n0.label, n1.label) = 0"), std::string::npos);
}

TEST(SqlTranslate, EveryTable2QueryTranslatesForEveryScheme) {
  const char* queries[] = {
      "/play//act[4]",
      "/play//act[3]//Following::act",
      "/play//act//speaker",
      "/act[5]//Following::speech",
      "/speech[4]//Preceding::line",
      "/play//act[3]//line",
      "/play//speech[1]//Following-sibling::speech[3]",
      "/play//speech",
      "/play//line",
  };
  for (const char* query : queries) {
    for (SqlScheme scheme :
         {SqlScheme::kInterval, SqlScheme::kPrime, SqlScheme::kPrefix}) {
      Result<std::string> sql = TranslateToSql(query, scheme);
      ASSERT_TRUE(sql.ok()) << query;
      EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos);
      EXPECT_NE(sql->find("ORDER BY"), std::string::npos);
    }
  }
}

TEST(SqlTranslate, ParseErrorsPropagate) {
  EXPECT_FALSE(TranslateToSql("not a query", SqlScheme::kPrime).ok());
}

}  // namespace
}  // namespace primelabel
