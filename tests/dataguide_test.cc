#include "xml/dataguide.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

TEST(DataGuide, DistinctPathsAndExtents) {
  Result<XmlTree> doc = ParseXml(
      "<bib><book><title/><author/><author/></book>"
      "<article><title/></article></bib>");
  ASSERT_TRUE(doc.ok());
  DataGuide guide(*doc);
  // Paths: /bib, /bib/book, /bib/book/title, /bib/book/author,
  // /bib/article, /bib/article/title.
  EXPECT_EQ(guide.path_count(), 6u);
  EXPECT_EQ(guide.Extent("/bib/book/author").size(), 2u);
  EXPECT_EQ(guide.Extent("/bib/article/title").size(), 1u);
  EXPECT_EQ(guide.Extent("/nonexistent").size(), 0u);
  std::vector<std::string> paths = guide.Paths();
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

TEST(DataGuide, NodesWithTagUnionsExtents) {
  Result<XmlTree> doc = ParseXml(
      "<r><a><t/></a><b><t/><t/></b><t/></r>");
  ASSERT_TRUE(doc.ok());
  DataGuide guide(*doc);
  EXPECT_EQ(guide.NodesWithTag("t").size(), 4u);
  EXPECT_EQ(guide.NodesWithTag("t"), doc->FindAll("t"));
  EXPECT_TRUE(guide.NodesWithTag("zzz").empty());
}

TEST(DataGuide, PathsThroughAnswersPathContainment) {
  XmlTree play = GenerateHamlet();
  DataGuide guide(play);
  // Every line sits on exactly one path through act.
  std::vector<std::string> through = guide.PathsThrough("act", "line");
  ASSERT_EQ(through.size(), 1u);
  EXPECT_EQ(through[0], "/play/act/scene/speech/line");
  EXPECT_TRUE(guide.PathsThrough("personae", "line").empty());
  // Union of the extents equals all lines.
  EXPECT_EQ(guide.Extent(through[0]).size(), play.FindAll("line").size());
}

TEST(DataGuide, SummaryIsMuchSmallerThanDocument) {
  XmlTree play = GenerateHamlet();
  DataGuide guide(play);
  // The whole 6.5k-node play has a handful of distinct label paths — the
  // compression that made DataGuide-piloted traversal viable in Lore.
  EXPECT_LT(guide.path_count(), 12u);
  EXPECT_GT(play.node_count(), 5000u);
}

TEST(DataGuide, TagNameBoundariesAreExact) {
  Result<XmlTree> doc = ParseXml("<r><ab/><b/><xb/></r>");
  ASSERT_TRUE(doc.ok());
  DataGuide guide(*doc);
  EXPECT_EQ(guide.NodesWithTag("b").size(), 1u);   // not ab, not xb
  EXPECT_EQ(guide.NodesWithTag("ab").size(), 1u);
}

}  // namespace
}  // namespace primelabel
