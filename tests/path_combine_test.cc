#include "core/path_combine.h"

#include <gtest/gtest.h>

#include "labeling/prime_optimized.h"
#include "xml/datasets.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace primelabel {
namespace {

TEST(PathCombine, Figure6BookAuthors) {
  // Figure 6(a): book with three structurally identical author children
  // collapses to one author carrying the occurrence count.
  XmlTree tree;
  NodeId book = tree.CreateRoot("book");
  tree.AppendChild(book, "author");
  tree.AppendChild(book, "author");
  tree.AppendChild(book, "author");
  CombineResult result = CombineRepeatedPaths(tree);
  EXPECT_EQ(result.nodes_removed, 2u);
  EXPECT_EQ(result.tree.node_count(), 2u);
  std::vector<NodeId> authors = result.tree.FindAll("author");
  ASSERT_EQ(authors.size(), 1u);
  const auto& attrs = result.tree.node(authors[0]).attributes;
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].first, "count");
  EXPECT_EQ(attrs[0].second, "3");
}

TEST(PathCombine, DifferentSubtreesAreNotMerged) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a1 = tree.AppendChild(root, "a");
  tree.AppendChild(a1, "x");
  NodeId a2 = tree.AppendChild(root, "a");
  tree.AppendChild(a2, "y");  // different child tag: distinct structure
  CombineResult result = CombineRepeatedPaths(tree);
  EXPECT_EQ(result.nodes_removed, 0u);
  EXPECT_EQ(result.tree.node_count(), 5u);
}

TEST(PathCombine, MergesRecursively) {
  // Repetition below a merged node collapses too: each record has three
  // identical fields, and the records themselves are identical.
  XmlTree tree;
  NodeId root = tree.CreateRoot("list");
  for (int r = 0; r < 4; ++r) {
    NodeId record = tree.AppendChild(root, "record");
    for (int f = 0; f < 3; ++f) tree.AppendChild(record, "field");
  }
  CombineResult result = CombineRepeatedPaths(tree);
  // 17 nodes -> list/record/field = 3.
  EXPECT_EQ(result.tree.node_count(), 3u);
  EXPECT_EQ(result.nodes_removed, 14u);
}

TEST(PathCombine, TextNodesDistinguishStructure) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a1 = tree.AppendChild(root, "a");
  tree.AppendText(a1, "same-shape");
  NodeId a2 = tree.AppendChild(root, "a");
  tree.AppendText(a2, "also-text");
  // Structure ignores text content: both are element 'a' with one text
  // child, so they merge.
  CombineResult result = CombineRepeatedPaths(tree);
  EXPECT_EQ(result.tree.FindAll("a").size(), 1u);
}

TEST(PathCombine, SingleNodeDocument) {
  XmlTree tree;
  tree.CreateRoot("only");
  CombineResult result = CombineRepeatedPaths(tree);
  EXPECT_EQ(result.tree.node_count(), 1u);
  EXPECT_EQ(result.nodes_removed, 0u);
}

TEST(PathCombine, ShrinksRecordStyleDatasets) {
  // Opt3's motivation: datasets conforming to a DTD have many repeating
  // patterns, so combining shrinks them dramatically (up to 83% label-size
  // reduction in Figure 13).
  DatasetSpec spec = NiagaraCorpusSpecs()[4];  // D5 "Car", record style
  XmlTree tree = GenerateDataset(spec);
  CombineResult result = CombineRepeatedPaths(tree);
  EXPECT_LT(result.tree.node_count(), tree.node_count() / 10);
  EXPECT_EQ(result.tree.node_count() + result.nodes_removed,
            tree.node_count());
}

TEST(PathCombine, CombinedTreeYieldsSmallerPrimeLabels) {
  DatasetSpec spec = NiagaraCorpusSpecs()[8];  // D9 "Company"
  XmlTree original = GenerateDataset(spec);
  CombineResult combined = CombineRepeatedPaths(original);
  PrimeOptimizedScheme scheme_original;
  scheme_original.LabelTree(original);
  PrimeOptimizedScheme scheme_combined;
  scheme_combined.LabelTree(combined.tree);
  EXPECT_LT(scheme_combined.MaxLabelBits(), scheme_original.MaxLabelBits());
}

}  // namespace
}  // namespace primelabel
