#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"
#include "xml/stats.h"

namespace primelabel {
namespace {

TEST(XmlParser, MinimalDocument) {
  Result<XmlTree> result = ParseXml("<root/>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->root()), "root");
  EXPECT_EQ(result->node_count(), 1u);
}

TEST(XmlParser, NestedElements) {
  Result<XmlTree> result =
      ParseXml("<book><title>T</title><author><name>A</name></author></book>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const XmlTree& tree = *result;
  EXPECT_EQ(tree.name(tree.root()), "book");
  NodeId title = tree.FindFirst("title");
  ASSERT_NE(title, kInvalidNodeId);
  EXPECT_EQ(tree.name(tree.first_child(title)), "T");
  NodeId name = tree.FindFirst("name");
  EXPECT_EQ(tree.Depth(name), 2);
}

TEST(XmlParser, Attributes) {
  Result<XmlTree> result =
      ParseXml(R"(<e a="1" b='two' c="a&amp;b"/>)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& attrs = result->node(result->root()).attributes;
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(attrs[1], (std::pair<std::string, std::string>{"b", "two"}));
  EXPECT_EQ(attrs[2], (std::pair<std::string, std::string>{"c", "a&b"}));
}

TEST(XmlParser, EntityReferences) {
  Result<XmlTree> result =
      ParseXml("<t>&lt;tag&gt; &amp; &quot;quote&quot; &apos;</t>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->first_child(result->root())),
            "<tag> & \"quote\" '");
}

TEST(XmlParser, NumericCharacterReferences) {
  Result<XmlTree> result = ParseXml("<t>&#65;&#x42;&#x43f;</t>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->first_child(result->root())),
            "AB\xD0\xBF");  // 'A', 'B', Cyrillic п (U+043F)
}

TEST(XmlParser, CdataSection) {
  Result<XmlTree> result = ParseXml("<t><![CDATA[<not> &parsed;]]></t>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->first_child(result->root())),
            "<not> &parsed;");
}

TEST(XmlParser, CommentsAndPisAreSkipped) {
  Result<XmlTree> result = ParseXml(
      "<?xml version=\"1.0\"?><!-- head --><root><!-- in --><a/>"
      "<?pi data?></root><!-- tail -->");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node_count(), 2u);
}

TEST(XmlParser, DoctypeIsSkipped) {
  Result<XmlTree> result =
      ParseXml("<!DOCTYPE play SYSTEM \"play.dtd\"><play><act/></play>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->root()), "play");
}

TEST(XmlParser, WhitespaceTextDroppedByDefault) {
  Result<XmlTree> result = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node_count(), 3u);  // no whitespace text nodes
}

TEST(XmlParser, WhitespaceTextKeptOnRequest) {
  XmlParseOptions options;
  options.keep_whitespace_text = true;
  Result<XmlTree> result = ParseXml("<a> <b/> </a>", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node_count(), 4u);
}

TEST(XmlParser, RejectsMismatchedTags) {
  Result<XmlTree> result = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("mismatched"), std::string::npos);
}

TEST(XmlParser, RejectsUnterminatedInput) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x>").ok());
  EXPECT_FALSE(ParseXml("<a><![CDATA[ oops").ok());
  EXPECT_FALSE(ParseXml("<t>&amp").ok());
}

TEST(XmlParser, RejectsGarbage) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("plain text").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());  // two roots
  EXPECT_FALSE(ParseXml("<a/>junk").ok());
  EXPECT_FALSE(ParseXml("<1invalid/>").ok());
  EXPECT_FALSE(ParseXml("<t>&unknown;</t>").ok());
}

TEST(XmlParser, NamespacesAreOpaqueNames) {
  Result<XmlTree> result = ParseXml("<ns:a xmlns:ns=\"u\"><ns:b/></ns:a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(result->root()), "ns:a");
}

TEST(XmlSerializer, EscapesSpecialCharacters) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("t");
  tree.AddAttribute(root, "a", "x\"<>&y");
  tree.AppendText(root, "1 < 2 & 3 > 2");
  std::string xml = SerializeXml(tree);
  EXPECT_EQ(xml,
            "<t a=\"x&quot;&lt;&gt;&amp;y\">1 &lt; 2 &amp; 3 &gt; 2</t>");
}

TEST(XmlSerializer, SelfClosesEmptyElements) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("a");
  tree.AppendChild(root, "b");
  EXPECT_EQ(SerializeXml(tree), "<a><b/></a>");
}

TEST(XmlSerializer, PrettyPrinting) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("a");
  tree.AppendChild(root, "b");
  XmlSerializeOptions options;
  options.pretty = true;
  EXPECT_EQ(SerializeXml(tree, options), "<a>\n  <b/>\n</a>");
}

TEST(XmlRoundTrip, ParseSerializeParsePreservesStructure) {
  const char* docs[] = {
      "<root/>",
      "<a><b><c/></b><d/></a>",
      R"(<p id="1"><q lang="en">text &amp; more</q><r/></p>)",
      "<deep><l1><l2><l3><l4>x</l4></l3></l2></l1></deep>",
  };
  for (const char* doc : docs) {
    Result<XmlTree> first = ParseXml(doc);
    ASSERT_TRUE(first.ok()) << doc;
    std::string serialized = SerializeXml(*first);
    Result<XmlTree> second = ParseXml(serialized);
    ASSERT_TRUE(second.ok()) << serialized;
    EXPECT_EQ(SerializeXml(*second), serialized) << doc;
    TreeStats s1 = ComputeStats(*first);
    TreeStats s2 = ComputeStats(*second);
    EXPECT_EQ(s1.node_count, s2.node_count);
    EXPECT_EQ(s1.max_depth, s2.max_depth);
    EXPECT_EQ(s1.max_fanout, s2.max_fanout);
  }
}

TEST(XmlParser, ErrorMessagesCarryOffsets) {
  Result<XmlTree> result = ParseXml("<a><b></wrong></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace primelabel
