#include "bigint/bigint.h"

#include <cstdint>
#include <random>
#include <tuple>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace primelabel {
namespace {

TEST(BigIntBasics, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.Sign(), 0);
  EXPECT_EQ(zero.BitLength(), 0);
  EXPECT_EQ(zero.ToDecimalString(), "0");
  EXPECT_FALSE(zero.IsOdd());
}

TEST(BigIntBasics, FromInt64) {
  EXPECT_EQ(BigInt(0).ToDecimalString(), "0");
  EXPECT_EQ(BigInt(1).ToDecimalString(), "1");
  EXPECT_EQ(BigInt(-1).ToDecimalString(), "-1");
  EXPECT_EQ(BigInt(123456789).ToDecimalString(), "123456789");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecimalString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).ToDecimalString(), "9223372036854775807");
}

TEST(BigIntBasics, FromUint64) {
  EXPECT_EQ(BigInt::FromUint64(0).ToDecimalString(), "0");
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX).ToDecimalString(),
            "18446744073709551615");
}

TEST(BigIntBasics, SignAndParity) {
  EXPECT_EQ(BigInt(5).Sign(), 1);
  EXPECT_EQ(BigInt(-5).Sign(), -1);
  EXPECT_TRUE(BigInt(5).IsOdd());
  EXPECT_FALSE(BigInt(4).IsOdd());
  EXPECT_TRUE(BigInt(-3).IsOdd());
}

TEST(BigIntBasics, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(2).BitLength(), 2);
  EXPECT_EQ(BigInt(3).BitLength(), 2);
  EXPECT_EQ(BigInt(4).BitLength(), 3);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX).BitLength(), 64);
  EXPECT_EQ((BigInt(1) << 100).BitLength(), 101);
}

TEST(BigIntParse, RoundTripsDecimalStrings) {
  for (const char* text :
       {"0", "1", "-1", "42", "123456789012345678901234567890",
        "-999999999999999999999999999999999999"}) {
    Result<BigInt> parsed = BigInt::FromDecimalString(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->ToDecimalString(), text);
  }
}

TEST(BigIntParse, RejectsMalformedInput) {
  EXPECT_FALSE(BigInt::FromDecimalString("").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("-").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("12a3").ok());
  EXPECT_FALSE(BigInt::FromDecimalString(" 12").ok());
  EXPECT_FALSE(BigInt::FromDecimalString("+12").ok());
}

TEST(BigIntParse, NormalizesNegativeZero) {
  Result<BigInt> parsed = BigInt::FromDecimalString("-0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsZero());
  EXPECT_EQ(parsed->ToDecimalString(), "0");
}

TEST(BigIntArithmetic, SmallValuesMatchInt64) {
  for (std::int64_t a = -25; a <= 25; ++a) {
    for (std::int64_t b = -25; b <= 25; ++b) {
      EXPECT_EQ((BigInt(a) + BigInt(b)).ToDecimalString(),
                std::to_string(a + b));
      EXPECT_EQ((BigInt(a) - BigInt(b)).ToDecimalString(),
                std::to_string(a - b));
      EXPECT_EQ((BigInt(a) * BigInt(b)).ToDecimalString(),
                std::to_string(a * b));
      if (b != 0) {
        EXPECT_EQ((BigInt(a) / BigInt(b)).ToDecimalString(),
                  std::to_string(a / b));
        EXPECT_EQ((BigInt(a) % BigInt(b)).ToDecimalString(),
                  std::to_string(a % b));
      }
    }
  }
}

TEST(BigIntArithmetic, CarryPropagation) {
  BigInt almost = BigInt::FromUint64(UINT64_MAX);
  EXPECT_EQ((almost + BigInt(1)).ToDecimalString(), "18446744073709551616");
  EXPECT_EQ((almost + almost).ToDecimalString(), "36893488147419103230");
  EXPECT_EQ(((almost + BigInt(1)) - BigInt(1)), almost);
}

TEST(BigIntArithmetic, LargeMultiplication) {
  // (10^20)^2 = 10^40
  BigInt big = *BigInt::FromDecimalString("100000000000000000000");
  EXPECT_EQ((big * big).ToDecimalString(),
            "10000000000000000000000000000000000000000");
}

TEST(BigIntArithmetic, KaratsubaMatchesSchoolbook) {
  // Values large enough to cross the Karatsuba threshold (32 limbs = 1024
  // bits): verify (a*b) / b == a and (a*b) % b == 0.
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    BigInt a(1), b(1);
    for (int i = 0; i < 40; ++i) {
      a = (a << 32) + BigInt::FromUint64(rng.Next() >> 32);
      b = (b << 32) + BigInt::FromUint64(rng.Next() >> 32);
    }
    BigInt product = a * b;
    EXPECT_EQ(product / b, a);
    EXPECT_EQ(product % b, BigInt(0));
    EXPECT_EQ(product / a, b);
  }
}

TEST(BigIntDivision, DivModIdentity) {
  Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    BigInt a = BigInt::FromUint64(rng.Next());
    for (int i = 0; i < static_cast<int>(rng.Below(6)); ++i) {
      a = a * BigInt::FromUint64(rng.Next() | 1);
    }
    BigInt b = BigInt::FromUint64((rng.Next() >> (rng.Below(60))) | 1);
    auto [q, r] = BigInt::DivMod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_GE(r, BigInt(0));
  }
}

TEST(BigIntDivision, SignsFollowCSemantics) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToDecimalString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToDecimalString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToDecimalString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToDecimalString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToDecimalString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToDecimalString(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToDecimalString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).ToDecimalString(), "-1");
}

TEST(BigIntDivision, KnuthD3CornerCases) {
  // Dividend limbs engineered so the trial quotient needs correction.
  BigInt a = (BigInt(1) << 128) - BigInt(1);
  BigInt b = (BigInt(1) << 64) + BigInt(1);
  auto [q, r] = BigInt::DivMod(a, b);
  EXPECT_EQ(q * b + r, a);
  BigInt c = (BigInt(1) << 96) - (BigInt(1) << 32);
  auto [q2, r2] = BigInt::DivMod(a, c);
  EXPECT_EQ(q2 * c + r2, a);
}

TEST(BigIntDivision, EuclideanModIsNonNegative) {
  EXPECT_EQ(BigInt(-7).EuclideanMod(BigInt(3)).ToDecimalString(), "2");
  EXPECT_EQ(BigInt(7).EuclideanMod(BigInt(3)).ToDecimalString(), "1");
  EXPECT_EQ(BigInt(-9).EuclideanMod(BigInt(3)).ToDecimalString(), "0");
}

TEST(BigIntShifts, LeftRightInverse) {
  BigInt v = *BigInt::FromDecimalString("987654321987654321987654321");
  for (int bits : {1, 7, 31, 32, 33, 64, 65, 100}) {
    EXPECT_EQ(((v << bits) >> bits), v) << bits;
  }
  EXPECT_EQ((BigInt(1) << 5).ToDecimalString(), "32");
  EXPECT_EQ((BigInt(32) >> 5).ToDecimalString(), "1");
  EXPECT_EQ((BigInt(31) >> 5).ToDecimalString(), "0");
}

TEST(BigIntComparison, TotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::FromUint64(UINT64_MAX));
  EXPECT_LT(BigInt::FromUint64(UINT64_MAX), BigInt(1) << 70);
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_NE(BigInt(42), BigInt(-42));
}

TEST(BigIntDivisibility, IsDivisibleBy) {
  BigInt product = BigInt(3) * BigInt(5) * BigInt(7);
  EXPECT_TRUE(product.IsDivisibleBy(BigInt(3)));
  EXPECT_TRUE(product.IsDivisibleBy(BigInt(15)));
  EXPECT_TRUE(product.IsDivisibleBy(BigInt(105)));
  EXPECT_FALSE(product.IsDivisibleBy(BigInt(2)));
  EXPECT_FALSE(product.IsDivisibleBy(BigInt(11)));
}

TEST(BigIntGcd, MatchesKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToDecimalString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToDecimalString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToDecimalString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToDecimalString(), "0");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToDecimalString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToDecimalString(), "1");
}

TEST(BigIntGcd, ExtendedGcdBezoutIdentity) {
  Rng rng(13);
  for (int round = 0; round < 100; ++round) {
    BigInt a = BigInt::FromUint64(rng.Next() >> rng.Below(32));
    BigInt b = BigInt::FromUint64(rng.Next() >> rng.Below(32));
    auto result = BigInt::ExtendedGcd(a, b);
    EXPECT_EQ(a * result.x + b * result.y, result.g);
    EXPECT_EQ(result.g, BigInt::Gcd(a, b));
  }
}

TEST(BigIntModular, InverseTimesValueIsOne) {
  BigInt modulus = *BigInt::FromDecimalString("1000000007");  // prime
  for (std::int64_t value : {2, 3, 999999999, 123456789}) {
    Result<BigInt> inverse = BigInt::ModInverse(BigInt(value), modulus);
    ASSERT_TRUE(inverse.ok());
    EXPECT_EQ((inverse.value() * BigInt(value)).EuclideanMod(modulus),
              BigInt(1));
  }
}

TEST(BigIntModular, InverseFailsWhenNotCoprime) {
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
  EXPECT_FALSE(BigInt::ModInverse(BigInt(0), BigInt(9)).ok());
}

TEST(BigIntModular, PowModMatchesFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  BigInt p(1000003);
  for (std::int64_t a : {2, 3, 5, 123456}) {
    EXPECT_EQ(BigInt::PowMod(BigInt(a), p - BigInt(1), p), BigInt(1)) << a;
  }
  EXPECT_EQ(BigInt::PowMod(BigInt(2), BigInt(10), BigInt(1000)),
            BigInt(24));  // 1024 mod 1000
  EXPECT_EQ(BigInt::PowMod(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigIntPow, SmallPowers) {
  EXPECT_EQ(BigInt(2).Pow(0).ToDecimalString(), "1");
  EXPECT_EQ(BigInt(2).Pow(10).ToDecimalString(), "1024");
  EXPECT_EQ(BigInt(10).Pow(20).ToDecimalString(), "100000000000000000000");
  EXPECT_EQ(BigInt(-3).Pow(3).ToDecimalString(), "-27");
}

TEST(BigIntHex, KnownValues) {
  EXPECT_EQ(BigInt(0).ToHexString(), "0");
  EXPECT_EQ(BigInt(255).ToHexString(), "ff");
  EXPECT_EQ(BigInt(256).ToHexString(), "100");
  EXPECT_EQ(BigInt(-0xabcdef).ToHexString(), "-abcdef");
  EXPECT_EQ((BigInt(1) << 64).ToHexString(), "10000000000000000");
}

TEST(BigIntUint64, FitsAndRoundTrips) {
  EXPECT_TRUE(BigInt::FromUint64(UINT64_MAX).FitsUint64());
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX).ToUint64(), UINT64_MAX);
  EXPECT_FALSE((BigInt(1) << 64).FitsUint64());
  EXPECT_EQ(BigInt::FromUint64(12345).ToUint64(), 12345u);
}

// Property sweep: algebraic identities on pseudo-random operands of many
// magnitudes.
class BigIntPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntPropertyTest, RingAxiomsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto random_bigint = [&rng]() {
    BigInt v = BigInt::FromUint64(rng.Next());
    int extra_limbs = static_cast<int>(rng.Below(4));
    for (int i = 0; i < extra_limbs; ++i) {
      v = (v << 64) + BigInt::FromUint64(rng.Next());
    }
    if (rng.Chance(50)) v = -v;
    return v;
  };
  BigInt a = random_bigint();
  BigInt b = random_bigint();
  BigInt c = random_bigint();
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, BigInt(0));
  EXPECT_EQ(a + (-a), BigInt(0));
  EXPECT_EQ(a * BigInt(1), a);
  EXPECT_EQ(a * BigInt(0), BigInt(0));
  if (!b.IsZero()) {
    auto [q, r] = BigInt::DivMod(a, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST_P(BigIntPropertyTest, DecimalRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  BigInt v = BigInt::FromUint64(rng.Next());
  for (int i = 0; i < static_cast<int>(rng.Below(5)); ++i) {
    v = v * BigInt::FromUint64(rng.Next() | 1) + BigInt::FromUint64(rng.Next());
  }
  Result<BigInt> parsed = BigInt::FromDecimalString(v.ToDecimalString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest, ::testing::Range(1, 51));

}  // namespace
}  // namespace primelabel
