// Cross-limb-width durability compatibility.
//
// The fixture under tests/data/limb32_store was written by the 32-bit-limb
// arithmetic engine (v1, pre-"engine v2" migration): a catalog-v3 epoch-0
// snapshot, a delta checkpoint chained on top, and a journal tail of
// committed-but-uncheckpointed frames. The on-disk formats serialize label
// magnitudes as minimal little-endian byte strings (BigInt::ToMagnitudeBytes),
// so they are limb-width independent by construction — this suite pins that
// contract: the current build must open the store, replay the journal, and
// recover a document whose full observable state (structure, tags, labels,
// self-labels, SC order numbers) digests identically to what the 32-bit
// writer recorded in DIGEST.txt at write time.
//
// Regenerating the fixture (only meaningful from a 32-bit-limb checkout):
//   PRIMELABEL_WRITE_COMPAT_FIXTURE=1 ./catalog_compat_test \
//     --gtest_also_run_disabled_tests --gtest_filter='*WriteFixture*'

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "corpus/durable_document_store.h"
#include "store/catalog.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

#ifndef PRIMELABEL_TEST_DATA_DIR
#define PRIMELABEL_TEST_DATA_DIR "tests/data"
#endif

namespace primelabel {
namespace {

namespace fs = std::filesystem;

std::string FixtureDir() {
  return std::string(PRIMELABEL_TEST_DATA_DIR) + "/limb32_store";
}

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

/// Full observable state of a document (same digest scheme as
/// durability_test.cc): two documents with equal digests answer every
/// oracle query identically.
std::string StateDigest(const LabeledDocument& doc) {
  std::ostringstream out;
  doc.tree().Preorder([&](NodeId id, int depth) {
    out << depth << '|' << doc.tree().name(id) << '|'
        << doc.scheme().structure().self_label(id) << '|'
        << doc.scheme().structure().label(id).ToHexString() << '|'
        << doc.scheme().OrderOf(id) << '\n';
  });
  return out.str();
}

std::string FixturePlayXml() {
  PlayOptions options;
  options.acts = 3;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 4;
  options.seed = 1804;  // deterministic: same XML from every checkout
  return SerializeXml(GeneratePlay("compat", options));
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

/// The deterministic mutation schedule both the writer (32-bit build, once)
/// and any future regeneration replay: growth, reordering inserts, a
/// delete, and a wrap — enough to force SC rewrites and non-trivial labels
/// into both the checkpointed state and the journal tail.
void MutatePhaseOne(DurableDocumentStore& store) {
  std::vector<NodeId> elems = NonRootElements(store.document().tree());
  ASSERT_GE(elems.size(), 12u);
  ASSERT_TRUE(store.AppendChild(elems[2], "stagedir").ok());
  ASSERT_TRUE(store.InsertBefore(elems[5], "prologue").ok());
  ASSERT_TRUE(store.InsertAfter(elems[7], "epilogue").ok());
  ASSERT_TRUE(store.Delete(elems[11]).ok());
  ASSERT_TRUE(store.Wrap(elems[3], "frame").ok());
  ASSERT_TRUE(store.Flush().ok());
}

void MutatePhaseTwo(DurableDocumentStore& store) {
  std::vector<NodeId> elems = NonRootElements(store.document().tree());
  ASSERT_GE(elems.size(), 10u);
  ASSERT_TRUE(store.AppendChild(elems[1], "aside").ok());
  ASSERT_TRUE(store.InsertBefore(elems[9], "chorus").ok());
  ASSERT_TRUE(store.AppendChild(elems[6], "note").ok());
  ASSERT_TRUE(store.Flush().ok());
}

void CopyTree(const std::string& from, const std::string& to) {
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), fs::path(to) / entry.path().filename(),
                  fs::copy_options::overwrite_existing);
  }
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Disabled by default: this is the fixture generator, run once from the
// 32-bit-limb checkout. It overwrites tests/data/limb32_store in the
// SOURCE tree.
TEST(CatalogCompat, DISABLED_WriteFixture) {
  if (std::getenv("PRIMELABEL_WRITE_COMPAT_FIXTURE") == nullptr) {
    GTEST_SKIP() << "set PRIMELABEL_WRITE_COMPAT_FIXTURE=1 to regenerate";
  }
  const std::string dir = FixtureDir();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);

  auto store = DurableDocumentStore::Create(dir, FixturePlayXml());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  MutatePhaseOne(*store);
  // Checkpoint: epoch 1 lands as a delta against the epoch-0 full
  // snapshot (small change set), so readers of the fixture exercise the
  // whole chain: snapshot + delta + journal replay.
  ASSERT_TRUE(store->Checkpoint().ok());
  MutatePhaseTwo(*store);  // journal tail, committed but not checkpointed

  std::ofstream digest(dir + "/DIGEST.txt", std::ios::binary);
  digest << StateDigest(store->document());
  ASSERT_TRUE(digest.good());
}

/// The core acceptance check: a store written by the 32-bit-limb build
/// opens under the current build and recovers to the exact digest the
/// writer recorded — catalog v3 snapshot, delta chain and WAL replay all
/// bit-identical across the limb migration.
TEST(CatalogCompat, Limb32StoreRecoversBitIdentically) {
  const std::string fixture = FixtureDir();
  ASSERT_TRUE(fs::exists(fixture + "/MANIFEST"))
      << "missing fixture; run the DISABLED_WriteFixture generator";
  const std::string expected = ReadWholeFile(fixture + "/DIGEST.txt");
  ASSERT_FALSE(expected.empty());

  // Work on a copy: Open truncates journals and sweeps stray files.
  const std::string work = TempDirPath("limb32_compat_open");
  std::error_code ec;
  fs::remove_all(work, ec);
  CopyTree(fixture, work);

  auto store = DurableDocumentStore::Open(work);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_GT(store->recovery_stats().inserts_applied, 0u)
      << "fixture journal tail should force real WAL replay";
  EXPECT_EQ(StateDigest(store->document()), expected);
  fs::remove_all(work, ec);
}

/// Re-serialization closes the loop: checkpointing the recovered state
/// under the current build and reopening must reproduce the same digest,
/// proving the current writer's bytes round-trip through its own reader
/// starting from 32-bit-era label magnitudes.
TEST(CatalogCompat, Limb32StateSurvivesRewriteUnderCurrentBuild) {
  const std::string fixture = FixtureDir();
  ASSERT_TRUE(fs::exists(fixture + "/MANIFEST"));
  const std::string expected = ReadWholeFile(fixture + "/DIGEST.txt");

  const std::string work = TempDirPath("limb32_compat_rewrite");
  std::error_code ec;
  fs::remove_all(work, ec);
  CopyTree(fixture, work);

  {
    auto store = DurableDocumentStore::Open(work);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  auto reopened = DurableDocumentStore::Open(work);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->recovery_stats().inserts_applied, 0u);
  EXPECT_EQ(StateDigest(reopened->document()), expected);
  fs::remove_all(work, ec);
}

/// Every label magnitude in the recovered document survives a
/// bytes->BigInt->bytes round trip unchanged: the I/O-edge contract the
/// limb migration must preserve.
TEST(CatalogCompat, RecoveredLabelBytesRoundTrip) {
  const std::string fixture = FixtureDir();
  ASSERT_TRUE(fs::exists(fixture + "/MANIFEST"));
  const std::string work = TempDirPath("limb32_compat_bytes");
  std::error_code ec;
  fs::remove_all(work, ec);
  CopyTree(fixture, work);

  auto store = DurableDocumentStore::Open(work);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  int checked = 0;
  store->document().tree().Preorder([&](NodeId id, int) {
    const BigInt& label = store->document().scheme().structure().label(id);
    std::vector<std::uint8_t> bytes = label.ToMagnitudeBytes();
    if (!bytes.empty()) {
      EXPECT_NE(bytes.back(), 0u) << "magnitude bytes must be minimal";
    }
    EXPECT_TRUE(BigInt::FromMagnitudeBytes(bytes) == label);
    ++checked;
  });
  EXPECT_GT(checked, 0);
  fs::remove_all(work, ec);
}

// ---------------------------------------------------------------------------
// Cross-format catalog compatibility: the fixture under
// tests/data/catalog_formats holds one document saved as format v2 and as
// format v3, with its observable state recorded in DIGEST.txt at write
// time. The current build must load both, and re-saving either as format
// v4 — heap-loaded or arena-mapped — must answer every oracle query with
// the exact recorded state. Regenerating (any checkout; the formats are
// limb-width independent):
//   PRIMELABEL_WRITE_COMPAT_FIXTURE=1 ./catalog_compat_test \
//     --gtest_also_run_disabled_tests --gtest_filter='*FormatsFixture*'

std::string FormatsDir() {
  return std::string(PRIMELABEL_TEST_DATA_DIR) + "/catalog_formats";
}

std::string FormatsXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 3;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 2004;  // deterministic: same XML from every checkout
  return SerializeXml(GeneratePlay("formats", options));
}

/// Observable state of a loaded catalog through the mode-neutral
/// accessors: identical digests mean identical answers to every tag,
/// structure, attribute, and order query, in either storage mode.
std::string CatalogDigest(const LoadedCatalog& catalog) {
  std::ostringstream out;
  for (std::size_t i = 0; i < catalog.row_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    out << catalog.tag_of(id) << '|' << catalog.is_element_of(id) << '|'
        << catalog.parent_of(id) << '|' << catalog.self_of(id) << '|'
        << BigInt::FromLimbs(catalog.label_view(id)).ToHexString() << '|'
        << catalog.OrderOf(id);
    for (const auto& [key, value] : catalog.attributes_of(id)) {
      out << '|' << key << '=' << value;
    }
    out << '\n';
  }
  return out.str();
}

// Disabled by default: fixture generator, overwrites
// tests/data/catalog_formats in the SOURCE tree.
TEST(CatalogCompat, DISABLED_WriteFormatsFixture) {
  if (std::getenv("PRIMELABEL_WRITE_COMPAT_FIXTURE") == nullptr) {
    GTEST_SKIP() << "set PRIMELABEL_WRITE_COMPAT_FIXTURE=1 to regenerate";
  }
  const std::string dir = FormatsDir();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);

  Result<LabeledDocument> doc =
      LabeledDocument::FromXml(FormatsXml(), /*group=*/5);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const std::vector<CatalogRow> rows = doc->ToCatalogRows();
  for (int version : {2, 3}) {
    CatalogWriteOptions options;
    options.format_version = version;
    ASSERT_TRUE(WriteCatalog(DefaultVfs(),
                             dir + "/v" + std::to_string(version) + ".plc",
                             rows, doc->scheme().sc_table(), options)
                    .ok());
  }
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), dir + "/v2.plc");
  ASSERT_TRUE(loaded.ok());
  std::ofstream digest(dir + "/DIGEST.txt", std::ios::binary);
  digest << CatalogDigest(*loaded);
  ASSERT_TRUE(digest.good());
}

class CatalogFormatUpgrade : public ::testing::TestWithParam<int> {};

/// v2/v3 file -> heap load -> digest check -> v4 re-save -> digest check
/// through both the heap and the arena open. One parameterized walk pins
/// the whole upgrade path bit-identically against the recorded state.
TEST_P(CatalogFormatUpgrade, RoundTripsToV4BitIdentically) {
  const int version = GetParam();
  const std::string source =
      FormatsDir() + "/v" + std::to_string(version) + ".plc";
  ASSERT_TRUE(fs::exists(source))
      << "missing fixture; run the DISABLED_WriteFormatsFixture generator";
  const std::string expected = ReadWholeFile(FormatsDir() + "/DIGEST.txt");
  ASSERT_FALSE(expected.empty());

  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), source);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version(), version);
  EXPECT_FALSE(loaded->arena_backed());
  EXPECT_EQ(CatalogDigest(*loaded), expected);

  // OpenCatalogMapped on a pre-v4 file falls back to heap mode (that is
  // the documented contract — only corruption refuses to fall back).
  Result<LoadedCatalog> fallback = OpenCatalogMapped(DefaultVfs(), source);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->arena_backed());
  EXPECT_EQ(CatalogDigest(*fallback), expected);

  // Upgrade: re-save as v4, then verify both open modes.
  const std::string upgraded =
      TempDirPath(("formats_v" + std::to_string(version) + "_to_v4.plc")
                      .c_str());
  ASSERT_TRUE(WriteCatalog(DefaultVfs(), upgraded, loaded->rows(),
                           loaded->sc_table())
                  .ok());
  Result<LoadedCatalog> v4_heap = LoadCatalog(DefaultVfs(), upgraded);
  ASSERT_TRUE(v4_heap.ok()) << v4_heap.status().ToString();
  EXPECT_EQ(v4_heap->format_version(), 4);
  EXPECT_EQ(CatalogDigest(*v4_heap), expected);

  Result<LoadedCatalog> v4_arena = OpenCatalogMapped(DefaultVfs(), upgraded);
  ASSERT_TRUE(v4_arena.ok()) << v4_arena.status().ToString();
  EXPECT_TRUE(v4_arena->arena_backed());
  EXPECT_EQ(CatalogDigest(*v4_arena), expected);
  std::remove(upgraded.c_str());
}

INSTANTIATE_TEST_SUITE_P(V2AndV3, CatalogFormatUpgrade,
                         ::testing::Values(2, 3));

}  // namespace
}  // namespace primelabel
