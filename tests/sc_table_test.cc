#include "core/sc_table.h"

#include <gtest/gtest.h>

#include "primes/prime_source.h"
#include "util/rng.h"

namespace primelabel {
namespace {

// The self-labels of the paper's Figure 9 tree, in document order.
const std::vector<std::uint64_t> kFigure9Selves = {2, 3, 5, 7, 11, 13};

TEST(ScTable, SingleGlobalScValueMatchesFigure9) {
  ScTable table(/*group_size=*/100);
  table.Build(kFigure9Selves);
  ASSERT_EQ(table.records().size(), 1u);
  EXPECT_EQ(table.records()[0].sc.ToDecimalString(), "29243");
  EXPECT_EQ(table.records()[0].max_modulus, 13u);
  for (std::size_t k = 0; k < kFigure9Selves.size(); ++k) {
    EXPECT_EQ(table.OrderOf(kFigure9Selves[k]), k + 1);
  }
}

TEST(ScTable, GroupOfFiveMatchesFigure10) {
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  ASSERT_EQ(table.records().size(), 2u);
  EXPECT_EQ(table.records()[0].sc.ToDecimalString(), "1523");
  EXPECT_EQ(table.records()[0].max_modulus, 11u);
  EXPECT_EQ(table.records()[1].sc.ToDecimalString(), "6");
  EXPECT_EQ(table.records()[1].max_modulus, 13u);
}

TEST(ScTable, InsertMatchesFigure11And12) {
  // Insert a node with self-label 17 so its order number is 3 (the paper's
  // new node in Figure 11). Orders of nodes after it shift by one.
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  ScUpdateStats stats = table.InsertAt(
      17, 3, [](std::uint64_t) -> std::uint64_t {
        ADD_FAILURE() << "no relabel expected";
        return 0;
      });
  // Both records change: the first holds shifted orders, the second gains
  // the new congruence.
  EXPECT_EQ(stats.records_updated, 2);
  EXPECT_EQ(stats.nodes_relabeled, 0);
  EXPECT_EQ(table.OrderOf(17), 3u);
  EXPECT_EQ(table.OrderOf(2), 1u);
  EXPECT_EQ(table.OrderOf(3), 2u);
  EXPECT_EQ(table.OrderOf(5), 4u);   // shifted
  EXPECT_EQ(table.OrderOf(7), 5u);
  EXPECT_EQ(table.OrderOf(11), 6u);
  EXPECT_EQ(table.OrderOf(13), 7u);
  // Figure 12's second record: x mod 13 = 7, x mod 17 = 3.
  const ScRecord& second = table.records()[1];
  EXPECT_EQ((second.sc % BigInt(13)).ToDecimalString(), "7");
  EXPECT_EQ((second.sc % BigInt(17)).ToDecimalString(), "3");
  EXPECT_EQ(second.max_modulus, 17u);
}

TEST(ScTable, AppendAddsAtEnd) {
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  ScUpdateStats stats = table.Append(17);
  EXPECT_EQ(stats.records_updated, 1);
  EXPECT_EQ(table.OrderOf(17), 7u);
  EXPECT_EQ(table.max_order(), 7u);
}

TEST(ScTable, InsertAtEndTouchesOneRecord) {
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  ScUpdateStats stats = table.InsertAt(
      17, 7, [](std::uint64_t) -> std::uint64_t { return 0; });
  EXPECT_EQ(stats.records_updated, 1);  // nothing shifts
  EXPECT_EQ(table.OrderOf(17), 7u);
}

TEST(ScTable, RelabelsNodesWhoseOrderReachesModulus) {
  // Inserting at position 1 shifts self 2 to order 2 and self 3 to order 3;
  // neither modulus can encode its new order, so both are relabeled.
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  std::vector<std::uint64_t> relabeled_selves;
  const std::uint64_t fresh_primes[] = {29, 31};
  ScUpdateStats stats =
      table.InsertAt(19, 1, [&](std::uint64_t old_self) -> std::uint64_t {
        relabeled_selves.push_back(old_self);
        return fresh_primes[relabeled_selves.size() - 1];
      });
  EXPECT_EQ(relabeled_selves, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(stats.nodes_relabeled, 2);
  EXPECT_EQ(table.OrderOf(19), 1u);
  EXPECT_FALSE(table.Contains(2));
  EXPECT_FALSE(table.Contains(3));
  EXPECT_EQ(table.OrderOf(29), 2u);  // relabeled node, shifted order
  EXPECT_EQ(table.OrderOf(31), 3u);
  EXPECT_EQ(table.OrderOf(5), 4u);
}

TEST(ScTable, RemoveKeepsOtherOrders) {
  ScTable table(/*group_size=*/5);
  table.Build(kFigure9Selves);
  EXPECT_TRUE(table.Remove(5));
  EXPECT_FALSE(table.Contains(5));
  EXPECT_FALSE(table.Remove(5));  // already gone
  // Deletion leaves every other order untouched (Section 4.2).
  EXPECT_EQ(table.OrderOf(2), 1u);
  EXPECT_EQ(table.OrderOf(7), 4u);
  EXPECT_EQ(table.OrderOf(13), 6u);
}

TEST(ScTable, RemoveWholeRecordThenReuse) {
  ScTable table(/*group_size=*/2);
  table.Build({2, 3, 5});
  EXPECT_TRUE(table.Remove(5));  // empties the second record
  table.Append(7);
  EXPECT_EQ(table.OrderOf(7), 4u);
  EXPECT_EQ(table.OrderOf(2), 1u);
}

TEST(ScTable, GroupSizeOneDegeneratesToDirectStorage) {
  ScTable table(/*group_size=*/1);
  table.Build(kFigure9Selves);
  EXPECT_EQ(table.records().size(), 6u);
  for (const ScRecord& record : table.records()) {
    ASSERT_EQ(record.moduli.size(), 1u);
    EXPECT_EQ(record.sc.ToUint64() % record.moduli[0], record.orders[0]);
  }
  // An insert near the front updates every following record — group size
  // trades record-update cost against SC value size. (Self 3 shifts to
  // order 3 and must be relabeled.)
  ScUpdateStats stats = table.InsertAt(
      17, 2, [](std::uint64_t old_self) -> std::uint64_t {
        EXPECT_EQ(old_self, 3u);
        return 19;
      });
  EXPECT_EQ(stats.records_updated, 6);  // five shifted + one new
  EXPECT_EQ(stats.nodes_relabeled, 1);
  EXPECT_EQ(table.OrderOf(19), 3u);
}

TEST(ScTable, ScModSelfAlwaysRecoversOrder) {
  PrimeSource primes;
  for (int group_size : {1, 3, 5, 10, 64}) {
    ScTable table(group_size);
    std::vector<std::uint64_t> selves;
    for (std::size_t i = 0; i < 300; ++i) selves.push_back(primes.PrimeAt(i));
    table.Build(selves);
    for (std::size_t k = 0; k < selves.size(); ++k) {
      EXPECT_EQ(table.OrderOf(selves[k]), k + 1)
          << "group_size=" << group_size << " k=" << k;
    }
  }
}

TEST(ScTable, VerifyIntegrityHoldsThroughAllOperations) {
  PrimeSource primes;
  primes.SkipFirst(3);
  ScTable table(/*group_size=*/3);
  std::vector<std::uint64_t> selves;
  for (int i = 0; i < 30; ++i) selves.push_back(primes.Next());
  table.Build(selves);
  ASSERT_TRUE(table.VerifyIntegrity());
  table.Append(primes.Next());
  ASSERT_TRUE(table.VerifyIntegrity());
  table.InsertAt(primes.Next(), 5,
                 [&](std::uint64_t) { return primes.Next(); });
  ASSERT_TRUE(table.VerifyIntegrity());
  ASSERT_TRUE(table.Remove(selves[10]));
  ASSERT_TRUE(table.VerifyIntegrity());
  ASSERT_TRUE(table.Remove(selves[11]));
  ASSERT_TRUE(table.Remove(selves[9]));  // empties a record
  EXPECT_TRUE(table.VerifyIntegrity());
}

TEST(ScTable, FromRecordsRebuildsIndexAndVerifies) {
  ScTable original(/*group_size=*/5);
  original.Build(kFigure9Selves);
  ScTable rebuilt =
      ScTable::FromRecords(original.group_size(), original.records());
  EXPECT_TRUE(rebuilt.VerifyIntegrity());
  for (std::uint64_t self : kFigure9Selves) {
    EXPECT_EQ(rebuilt.OrderOf(self), original.OrderOf(self));
  }
  EXPECT_EQ(rebuilt.max_order(), original.max_order());
}

TEST(ScTable, RandomInsertSequenceKeepsOrdersConsistent) {
  // Model: maintain a reference vector of selves in document order and
  // compare orders after each random insertion.
  PrimeSource primes;
  primes.SkipFirst(3);  // start at 7 so early orders stay below moduli
  ScTable table(/*group_size=*/4);
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 40; ++i) reference.push_back(primes.Next());
  table.Build(reference);

  Rng rng(2024);
  for (int round = 0; round < 60; ++round) {
    std::uint64_t self = primes.Next();
    std::uint64_t position = 1 + rng.Below(reference.size() + 1);
    table.InsertAt(self, position,
                   [&](std::uint64_t old_self) -> std::uint64_t {
                     std::uint64_t fresh = primes.Next();
                     for (auto& s : reference) {
                       if (s == old_self) s = fresh;
                     }
                     return fresh;
                   });
    reference.insert(reference.begin() +
                         static_cast<std::ptrdiff_t>(position - 1),
                     self);
    ASSERT_EQ(table.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(table.OrderOf(reference[k]), k + 1)
          << "round " << round << " k " << k;
    }
  }
}

}  // namespace
}  // namespace primelabel
