#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "labeling/dewey.h"
#include "labeling/float_interval.h"
#include "labeling/gapped_interval.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_bottom_up.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "labeling/scheme.h"
#include "util/rng.h"
#include "xml/datasets.h"
#include "xml/tree.h"

namespace primelabel {
namespace {

std::unique_ptr<LabelingScheme> MakeScheme(const std::string& name) {
  if (name == "interval") return std::make_unique<IntervalScheme>();
  if (name == "interval-xiss") {
    return std::make_unique<IntervalScheme>(IntervalVariant::kOrderSize);
  }
  if (name == "prefix-1") {
    return std::make_unique<PrefixScheme>(PrefixVariant::kUnary);
  }
  if (name == "prefix-2") {
    return std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
  }
  if (name == "dewey") return std::make_unique<DeweyScheme>();
  if (name == "float-interval") return std::make_unique<FloatIntervalScheme>();
  if (name == "interval-gapped") {
    return std::make_unique<GappedIntervalScheme>(/*gap=*/256);
  }
  if (name == "prime-topdown") return std::make_unique<PrimeTopDownScheme>();
  if (name == "prime-bottomup") return std::make_unique<PrimeBottomUpScheme>();
  if (name == "prime") return std::make_unique<PrimeOptimizedScheme>();
  ADD_FAILURE() << "unknown scheme " << name;
  return nullptr;
}

// The paper's Figure 2 tree: root with two children; first child has two
// leaf children, second child has one leaf child.
XmlTree Figure2Tree(std::vector<NodeId>* nodes) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  NodeId b = tree.AppendChild(root, "b");
  NodeId a1 = tree.AppendChild(a, "a1");
  NodeId a2 = tree.AppendChild(a, "a2");
  NodeId b1 = tree.AppendChild(b, "b1");
  *nodes = {root, a, b, a1, a2, b1};
  return tree;
}

// --- Scheme-specific behaviour ---------------------------------------------

TEST(IntervalScheme, StartEndNumbersFollowTraversal) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  // Preorder entry/exit: root(1,12) a(2,7) a1(3,4) a2(5,6) b(8,11) b1(9,10).
  EXPECT_EQ(scheme.low(n[0]), 1u);
  EXPECT_EQ(scheme.high(n[0]), 12u);
  EXPECT_EQ(scheme.low(n[1]), 2u);
  EXPECT_EQ(scheme.high(n[1]), 7u);
  EXPECT_EQ(scheme.low(n[5]), 9u);
  EXPECT_EQ(scheme.high(n[5]), 10u);
}

TEST(IntervalScheme, XissOrderSize) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  IntervalScheme scheme(IntervalVariant::kOrderSize);
  scheme.LabelTree(tree);
  // order = preorder index, size = subtree count.
  EXPECT_EQ(scheme.low(n[0]), 1u);
  EXPECT_EQ(scheme.high(n[0]), 6u);  // order 1 + size 6 - 1
  EXPECT_EQ(scheme.low(n[1]), 2u);
  EXPECT_EQ(scheme.high(n[1]), 4u);
  EXPECT_TRUE(scheme.IsAncestor(n[0], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[1], n[5]));
}

TEST(IntervalScheme, InsertRelabelsFollowingNodes) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  // Insert before a2: a2, b, b1 shift (and the ancestors' ends move).
  NodeId fresh = tree.InsertBefore(n[4], "new");
  int relabeled = scheme.HandleInsert(fresh, InsertOrder::kUnordered);
  // new node + a2, b, b1 renumbered + root/a end values changed.
  EXPECT_GE(relabeled, 4);
  EXPECT_TRUE(scheme.IsAncestor(n[1], fresh));
  EXPECT_FALSE(scheme.IsAncestor(n[2], fresh));
}

TEST(IntervalScheme, AppendAtEndIsCheap) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  NodeId fresh = tree.AppendChild(n[2], "tail");  // last subtree
  int relabeled = scheme.HandleInsert(fresh, InsertOrder::kUnordered);
  // Only the new node plus the end-points of its ancestors change.
  EXPECT_LE(relabeled, 4);
}

TEST(PrefixSelfCode, UnaryConstruction) {
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kUnary, 0), "0");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kUnary, 1), "10");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kUnary, 2), "110");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kUnary, 9), "1111111110");
}

TEST(PrefixSelfCode, BinaryConstructionMatchesPaperSequence) {
  // Section 3.1: "the labels for sibling nodes will be as follows:
  // 0, 10, 1100, 1101, 1110, 11110000".
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 0), "0");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 1), "10");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 2), "1100");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 3), "1101");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 4), "1110");
  EXPECT_EQ(PrefixSelfCode(PrefixVariant::kBinary, 5), "11110000");
}

TEST(PrefixSelfCode, BinaryCodesArePrefixFree) {
  std::vector<std::string> codes;
  for (int i = 0; i < 64; ++i) {
    codes.push_back(PrefixSelfCode(PrefixVariant::kBinary, i));
  }
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = 0; j < codes.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(codes[j].starts_with(codes[i]))
          << codes[i] << " prefixes " << codes[j];
    }
  }
}

TEST(PrefixSelfCode, BinaryCodesIncreaseLexicographically) {
  for (int i = 0; i + 1 < 64; ++i) {
    EXPECT_LT(PrefixSelfCode(PrefixVariant::kBinary, i),
              PrefixSelfCode(PrefixVariant::kBinary, i + 1))
        << i;
  }
}

TEST(PrefixScheme, LabelsConcatenateParentCodes) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrefixScheme scheme(PrefixVariant::kBinary);
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.label(n[0]), "");
  EXPECT_EQ(scheme.label(n[1]), "0");
  EXPECT_EQ(scheme.label(n[2]), "10");
  EXPECT_EQ(scheme.label(n[3]), "00");
  EXPECT_EQ(scheme.label(n[4]), "010");
  EXPECT_EQ(scheme.label(n[5]), "100");
}

TEST(PrefixScheme, UnorderedInsertRelabelsOnlyNewNode) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrefixScheme scheme(PrefixVariant::kBinary);
  scheme.LabelTree(tree);
  NodeId fresh = tree.InsertBefore(n[4], "new");
  EXPECT_EQ(scheme.HandleInsert(fresh, InsertOrder::kUnordered), 1);
  EXPECT_TRUE(scheme.IsAncestor(n[1], fresh));
  EXPECT_TRUE(scheme.IsParent(n[1], fresh));
  // Existing labels untouched.
  EXPECT_EQ(scheme.label(n[4]), "010");
}

TEST(PrefixScheme, OrderedInsertRelabelsFollowingSiblingSubtrees) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrefixScheme scheme(PrefixVariant::kBinary);
  scheme.LabelTree(tree);
  // Insert before node a (first child of root): both a and b subtrees shift.
  NodeId fresh = tree.InsertBefore(n[1], "new");
  int relabeled = scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);
  EXPECT_EQ(relabeled, 6);  // new + a,a1,a2 + b,b1
  EXPECT_EQ(scheme.label(fresh), "0");
  EXPECT_EQ(scheme.label(n[1]), "10");
  EXPECT_EQ(scheme.label(n[2]), "1100");
}

TEST(PrefixScheme, WrapRelabelsDescendants) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrefixScheme scheme(PrefixVariant::kBinary);
  scheme.LabelTree(tree);
  NodeId wrapper = tree.WrapNode(n[1], "wrap");  // wraps a (2 children)
  int relabeled = scheme.HandleInsert(wrapper, InsertOrder::kUnordered);
  EXPECT_EQ(relabeled, 4);  // wrapper + a + a1 + a2
  EXPECT_TRUE(scheme.IsParent(wrapper, n[1]));
  EXPECT_TRUE(scheme.IsAncestor(wrapper, n[3]));
  EXPECT_TRUE(scheme.IsAncestor(n[0], wrapper));
}

TEST(DeweyScheme, PathsAreSiblingOrdinals) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  DeweyScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.LabelString(n[0]), "(root)");
  EXPECT_EQ(scheme.LabelString(n[1]), "1");
  EXPECT_EQ(scheme.LabelString(n[4]), "1.2");
  EXPECT_EQ(scheme.LabelString(n[5]), "2.1");
  EXPECT_TRUE(scheme.IsAncestor(n[1], n[4]));
  EXPECT_TRUE(scheme.IsParent(n[2], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[1], n[5]));
}

TEST(PrimeTopDown, LabelsAreRootPathProducts) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeTopDownScheme scheme;
  scheme.LabelTree(tree);
  // Preorder prime assignment: a=2, a1=3, a2=5, b=7, b1=11.
  EXPECT_EQ(scheme.label(n[0]).ToDecimalString(), "1");
  EXPECT_EQ(scheme.label(n[1]).ToDecimalString(), "2");
  EXPECT_EQ(scheme.label(n[3]).ToDecimalString(), "6");    // 2*3
  EXPECT_EQ(scheme.label(n[4]).ToDecimalString(), "10");   // 2*5
  EXPECT_EQ(scheme.label(n[2]).ToDecimalString(), "7");
  EXPECT_EQ(scheme.label(n[5]).ToDecimalString(), "77");   // 7*11
  // The paper's Figure 2 example: parent-label of "10" is 2, self-label 5.
  EXPECT_EQ(scheme.self_label(n[4]), 5u);
}

TEST(PrimeTopDown, DivisibilityDecidesAncestry) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeTopDownScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_TRUE(scheme.IsAncestor(n[0], n[5]));
  EXPECT_TRUE(scheme.IsAncestor(n[1], n[4]));
  EXPECT_FALSE(scheme.IsAncestor(n[1], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[4], n[1]));
  EXPECT_FALSE(scheme.IsAncestor(n[3], n[4]));  // siblings
  EXPECT_TRUE(scheme.IsParent(n[2], n[5]));
  EXPECT_FALSE(scheme.IsParent(n[0], n[5]));  // grandparent, not parent
}

TEST(PrimeTopDown, InsertNeverRelabelsExistingNodes) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeTopDownScheme scheme;
  scheme.LabelTree(tree);
  BigInt before_a2 = scheme.label(n[4]);
  NodeId fresh = tree.InsertBefore(n[4], "new");
  EXPECT_EQ(scheme.HandleInsert(fresh, InsertOrder::kUnordered), 1);
  EXPECT_EQ(scheme.label(n[4]), before_a2);
  EXPECT_TRUE(scheme.IsAncestor(n[1], fresh));
  EXPECT_TRUE(scheme.IsParent(n[1], fresh));
  // The fresh node's self-label is a previously unused prime.
  EXPECT_EQ(scheme.self_label(fresh), 13u);
}

TEST(PrimeTopDown, WrapRelabelsOnlyDescendants) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeTopDownScheme scheme;
  scheme.LabelTree(tree);
  BigInt b_label = scheme.label(n[2]);
  NodeId wrapper = tree.WrapNode(n[1], "wrap");
  int relabeled = scheme.HandleInsert(wrapper, InsertOrder::kUnordered);
  EXPECT_EQ(relabeled, 4);  // wrapper + a + a1 + a2
  EXPECT_EQ(scheme.label(n[2]), b_label);  // sibling untouched
  EXPECT_TRUE(scheme.IsParent(wrapper, n[1]));
  EXPECT_TRUE(scheme.IsAncestor(n[0], wrapper));
  EXPECT_TRUE(scheme.IsAncestor(wrapper, n[3]));
}

TEST(PrimeBottomUp, ParentsAreChildProducts) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeBottomUpScheme scheme;
  scheme.LabelTree(tree);
  // Post-order prime assignment to leaves: a1=2, a2=3, b1=5.
  EXPECT_EQ(scheme.label(n[3]).ToDecimalString(), "2");
  EXPECT_EQ(scheme.label(n[4]).ToDecimalString(), "3");
  EXPECT_EQ(scheme.label(n[1]).ToDecimalString(), "6");
  // b has a single child: product gains a disambiguating prime (7).
  EXPECT_EQ(scheme.label(n[5]).ToDecimalString(), "5");
  EXPECT_EQ(scheme.label(n[2]).ToDecimalString(), "35");
  EXPECT_EQ(scheme.label(n[0]).ToDecimalString(), "210");  // 6 * 35
}

TEST(PrimeBottomUp, ReverseDivisibilityDecidesAncestry) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeBottomUpScheme scheme;
  scheme.LabelTree(tree);
  // Property 2: x ancestor of y iff label(x) mod label(y) == 0.
  EXPECT_TRUE(scheme.IsAncestor(n[0], n[3]));
  EXPECT_TRUE(scheme.IsAncestor(n[1], n[4]));
  EXPECT_TRUE(scheme.IsAncestor(n[2], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[1], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[3], n[1]));
  EXPECT_TRUE(scheme.IsParent(n[0], n[1]));
  EXPECT_FALSE(scheme.IsParent(n[0], n[3]));
}

TEST(PrimeBottomUp, InsertRelabelsRootPath) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeBottomUpScheme scheme;
  scheme.LabelTree(tree);
  NodeId fresh = tree.AppendChild(n[1], "new");  // under a, depth 2
  int relabeled = scheme.HandleInsert(fresh, InsertOrder::kUnordered);
  EXPECT_EQ(relabeled, 3);  // fresh + a + root
  EXPECT_TRUE(scheme.IsAncestor(n[1], fresh));
  EXPECT_TRUE(scheme.IsAncestor(n[0], fresh));
  EXPECT_FALSE(scheme.IsAncestor(n[2], fresh));
  // Untouched branch still correct.
  EXPECT_TRUE(scheme.IsAncestor(n[2], n[5]));
}

TEST(PrimeOptimized, LeavesGetPowersOfTwo) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeOptimizedScheme scheme;
  scheme.LabelTree(tree);
  // a and b are top-level non-leaves: reserved primes 3 and 5. Leaves get
  // powers of two per parent: a1=2, a2=4, b1=2.
  EXPECT_EQ(scheme.self_label(n[1]).ToDecimalString(), "3");
  EXPECT_EQ(scheme.self_label(n[2]).ToDecimalString(), "5");
  EXPECT_EQ(scheme.self_label(n[3]).ToDecimalString(), "2");
  EXPECT_EQ(scheme.self_label(n[4]).ToDecimalString(), "4");
  EXPECT_EQ(scheme.self_label(n[5]).ToDecimalString(), "2");
  EXPECT_EQ(scheme.label(n[4]).ToDecimalString(), "12");  // 3*4
  EXPECT_EQ(scheme.label(n[5]).ToDecimalString(), "10");  // 5*2
}

TEST(PrimeOptimized, Property3DecidesAncestry) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeOptimizedScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_TRUE(scheme.IsAncestor(n[0], n[4]));
  EXPECT_TRUE(scheme.IsAncestor(n[1], n[3]));
  EXPECT_TRUE(scheme.IsAncestor(n[1], n[4]));
  EXPECT_TRUE(scheme.IsAncestor(n[2], n[5]));
  EXPECT_FALSE(scheme.IsAncestor(n[1], n[5]));
  // Crucially: a1's label (6 = 3*2) divides a2's label (12 = 3*4), but a1
  // is even, so Property 3 correctly rejects the sibling pair.
  EXPECT_TRUE(scheme.label(n[4]).IsDivisibleBy(scheme.label(n[3])));
  EXPECT_FALSE(scheme.IsAncestor(n[3], n[4]));
}

TEST(PrimeOptimized, LeafInsertUnderLeafRelabelsTwoNodes) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeOptimizedScheme scheme;
  scheme.LabelTree(tree);
  // a1 is a leaf with an even self-label; giving it a child forces a prime
  // self-label onto a1 — the "2 nodes relabeled" of Section 5.3.
  NodeId fresh = tree.AppendChild(n[3], "deep");
  int relabeled = scheme.HandleInsert(fresh, InsertOrder::kUnordered);
  EXPECT_EQ(relabeled, 2);
  EXPECT_TRUE(scheme.self_label(n[3]).IsOdd());
  EXPECT_TRUE(scheme.IsAncestor(n[3], fresh));
  EXPECT_TRUE(scheme.IsAncestor(n[1], fresh));
  EXPECT_TRUE(scheme.IsParent(n[3], fresh));
}

TEST(PrimeOptimized, SiblingLeafInsertRelabelsOneNode) {
  std::vector<NodeId> n;
  XmlTree tree = Figure2Tree(&n);
  PrimeOptimizedScheme scheme;
  scheme.LabelTree(tree);
  NodeId fresh = tree.InsertAfter(n[4], "new");  // sibling under a
  EXPECT_EQ(scheme.HandleInsert(fresh, InsertOrder::kUnordered), 1);
  EXPECT_EQ(scheme.self_label(fresh).ToDecimalString(), "8");  // 2^3
  EXPECT_TRUE(scheme.IsParent(n[1], fresh));
}

TEST(PrimeOptimized, LeafExponentThresholdFallsBackToPrimes) {
  PrimeOptimizedOptions options;
  options.max_leaf_exponent = 3;
  PrimeOptimizedScheme scheme(options);
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId parent = tree.AppendChild(root, "p");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 6; ++i) leaves.push_back(tree.AppendChild(parent, "l"));
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.self_label(leaves[0]).ToDecimalString(), "2");
  EXPECT_EQ(scheme.self_label(leaves[2]).ToDecimalString(), "8");
  // Leaves beyond 2^3 take odd primes instead.
  EXPECT_TRUE(scheme.self_label(leaves[3]).IsOdd());
  EXPECT_TRUE(scheme.self_label(leaves[5]).IsOdd());
  // Ancestor tests still correct for every pair.
  for (NodeId leaf : leaves) {
    EXPECT_TRUE(scheme.IsAncestor(parent, leaf));
    EXPECT_TRUE(scheme.IsAncestor(root, leaf));
    for (NodeId other : leaves) {
      if (leaf != other) EXPECT_FALSE(scheme.IsAncestor(leaf, other));
    }
  }
}

TEST(PrimeOptimized, ReservedPrimesKeepTopLevelSelvesSmall) {
  // A two-level tree whose top-level nodes come late in DFS order would,
  // without Opt1, receive large primes.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  for (int i = 0; i < 8; ++i) {
    NodeId top = tree.AppendChild(root, "top");
    NodeId mid = tree.AppendChild(top, "mid");
    for (int j = 0; j < 30; ++j) tree.AppendChild(mid, "leaf");
  }
  PrimeOptimizedOptions with;
  with.reserved_primes = 16;
  PrimeOptimizedScheme opt1(with);
  opt1.LabelTree(tree);
  PrimeOptimizedOptions without;
  without.reserved_primes = 0;
  PrimeOptimizedScheme plain(without);
  plain.LabelTree(tree);
  // The last top-level node's self must be smaller with reservation.
  std::vector<NodeId> tops = tree.FindAll("top");
  EXPECT_LT(opt1.self_label(tops.back()), plain.self_label(tops.back()));
  EXPECT_LE(opt1.MaxLabelBits(), plain.MaxLabelBits());
}

TEST(FloatInterval, InsertsFitUntilMantissaExhaustion) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  tree.AppendChild(root, "a");
  FloatIntervalScheme scheme;
  scheme.LabelTree(tree);
  // Prepend repeatedly: each insertion halves the leading gap. All fit
  // without relabeling for a while...
  int cheap = 0;
  while (scheme.relabel_events() == 0 && cheap < 200) {
    NodeId fresh = tree.InsertBefore(tree.first_child(root), "new");
    scheme.HandleInsert(fresh, InsertOrder::kUnordered);
    ++cheap;
  }
  // ...but the double mantissa (52 bits) runs out near 50 insertions.
  EXPECT_GT(cheap, 20);
  EXPECT_LT(cheap, 80);
  EXPECT_EQ(scheme.relabel_events(), 1);
  // Correctness holds across the relabel.
  std::vector<NodeId> nodes = tree.PreorderNodes();
  for (NodeId x : nodes) {
    for (NodeId y : nodes) {
      ASSERT_EQ(scheme.IsAncestor(x, y), tree.IsAncestor(x, y));
    }
  }
}

TEST(FloatInterval, FixedLengthLabelIsTwoDoubles) {
  XmlTree tree;
  tree.CreateRoot("r");
  FloatIntervalScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.MaxLabelBits(), 128);
}

// --- Cross-scheme properties -------------------------------------------------

using SchemeSeed = std::tuple<std::string, int>;

class SchemePropertyTest : public ::testing::TestWithParam<SchemeSeed> {};

TEST_P(SchemePropertyTest, RelationshipsMatchGroundTruth) {
  auto [name, seed] = GetParam();
  RandomTreeOptions options;
  options.node_count = 120;
  options.max_depth = 5;
  options.max_fanout = 8;
  options.seed = static_cast<std::uint64_t>(seed);
  XmlTree tree = GenerateRandomTree(options);
  std::unique_ptr<LabelingScheme> scheme = MakeScheme(name);
  scheme->LabelTree(tree);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  for (NodeId x : nodes) {
    for (NodeId y : nodes) {
      EXPECT_EQ(scheme->IsAncestor(x, y), tree.IsAncestor(x, y))
          << name << " ancestor x=" << x << " y=" << y;
      EXPECT_EQ(scheme->IsParent(x, y), tree.parent(y) == x)
          << name << " parent x=" << x << " y=" << y;
    }
  }
}

TEST_P(SchemePropertyTest, RelationshipsSurviveRandomInserts) {
  auto [name, seed] = GetParam();
  RandomTreeOptions options;
  options.node_count = 60;
  options.max_depth = 5;
  options.max_fanout = 6;
  options.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
  XmlTree tree = GenerateRandomTree(options);
  std::unique_ptr<LabelingScheme> scheme = MakeScheme(name);
  scheme->LabelTree(tree);

  Rng rng(static_cast<std::uint64_t>(seed));
  for (int round = 0; round < 25; ++round) {
    std::vector<NodeId> nodes = tree.PreorderNodes();
    NodeId target = nodes[rng.Below(nodes.size())];
    NodeId fresh;
    switch (rng.Below(4)) {
      case 0:
        fresh = tree.AppendChild(target, "ins");
        break;
      case 1:
        fresh = target == tree.root() ? tree.AppendChild(target, "ins")
                                      : tree.InsertBefore(target, "ins");
        break;
      case 2:
        fresh = target == tree.root() ? tree.AppendChild(target, "ins")
                                      : tree.InsertAfter(target, "ins");
        break;
      default:
        fresh = target == tree.root() ? tree.AppendChild(target, "ins")
                                      : tree.WrapNode(target, "ins");
    }
    int relabeled = scheme->HandleInsert(fresh, InsertOrder::kUnordered);
    EXPECT_GE(relabeled, 1) << name;
  }
  std::vector<NodeId> nodes = tree.PreorderNodes();
  for (NodeId x : nodes) {
    for (NodeId y : nodes) {
      EXPECT_EQ(scheme->IsAncestor(x, y), tree.IsAncestor(x, y))
          << name << " ancestor x=" << x << " y=" << y;
      EXPECT_EQ(scheme->IsParent(x, y), tree.parent(y) == x)
          << name << " parent x=" << x << " y=" << y;
    }
  }
}

TEST_P(SchemePropertyTest, LabelBitsArePositiveAndBounded) {
  auto [name, seed] = GetParam();
  RandomTreeOptions options;
  options.node_count = 200;
  options.max_depth = 6;
  options.max_fanout = 10;
  options.seed = static_cast<std::uint64_t>(seed) + 1000;
  XmlTree tree = GenerateRandomTree(options);
  std::unique_ptr<LabelingScheme> scheme = MakeScheme(name);
  scheme->LabelTree(tree);
  int max_bits = scheme->MaxLabelBits();
  EXPECT_GT(max_bits, 0) << name;
  EXPECT_LT(max_bits, 4096) << name;
  EXPECT_LE(scheme->AvgLabelBits(), max_bits) << name;
  EXPECT_GT(scheme->TotalLabelBits(), 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemePropertyTest,
    ::testing::Combine(
        ::testing::Values("interval", "interval-xiss", "float-interval",
                          "interval-gapped",
                          "prefix-1", "prefix-2", "dewey", "prime-topdown",
                          "prime-bottomup", "prime"),
        ::testing::Range(1, 6)),
    [](const ::testing::TestParamInfo<SchemeSeed>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace primelabel
