// Succinct label arena and catalog-v4 image integrity (DESIGN.md §15).
//
// Three contracts pinned here:
//   1. LabelArena round-trips arbitrary magnitude sequences and rejects
//      damaged images with kCorruption instead of reading out of bounds.
//   2. Every byte of a v4 catalog is covered by a digest: flipping one
//      byte inside the header, the directory, or any of the six sections
//      must surface kCorruption from both LoadCatalog and
//      OpenCatalogMapped (corruption never falls back to heap mode).
//      Truncating the image mid-mmap-length also fails typed; a missing
//      file is kNotFound.
//   3. An arena-backed catalog answers every oracle query bit-identically
//      to the heap catalog loaded from the same file — scalar tests,
//      batch kernels, order lookups, and full XPath evaluation.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "corpus/epoch_view.h"
#include "corpus/labeled_document.h"
#include "store/catalog.h"
#include "store/label_arena.h"
#include "store/label_table.h"
#include "xml/shakespeare.h"
#include "xpath/evaluator.h"

namespace primelabel {
namespace {

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// LabelArena unit tests.

TEST(LabelArena, RoundTripsMixedMagnitudes) {
  // Zero, single-limb, multi-limb, and a non-minimal input whose trailing
  // zero limbs the builder must strip.
  std::vector<std::vector<std::uint64_t>> rows = {
      {},                       // zero
      {7},                      //
      {0xFFFFFFFFFFFFFFFFull},  // max single limb
      {1, 2, 3, 4, 5},          //
      {9, 0, 0},                // non-minimal: stored as {9}
      {},                       // zero again, mid-sequence
      {0, 0, 1},                // leading-zero limbs are significant
  };
  LabelArenaBuilder builder;
  for (const auto& row : rows) builder.Append(row);
  ASSERT_EQ(builder.rows(), rows.size());

  std::vector<std::uint8_t> image = builder.Encode();
  Result<LabelArena> arena = LabelArena::FromBytes(image, "test");
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  ASSERT_EQ(arena->size(), rows.size());

  for (std::size_t i = 0; i < rows.size(); ++i) {
    // Compare through BigInt so non-minimal inputs normalize the same way.
    BigInt expected = BigInt::FromLimbs(rows[i]);
    BigInt actual = BigInt::FromLimbs((*arena)[i]);
    EXPECT_TRUE(actual == expected) << "row " << i;
  }
  // Zero reads back as the empty span (BigInt::Magnitude's shape).
  EXPECT_TRUE((*arena)[0].empty());
  EXPECT_TRUE((*arena)[5].empty());
}

TEST(LabelArena, SelectCrossesDirectoryBlocks) {
  // >128 rows of varying width so lookups span multiple 64-row directory
  // entries and multiple bitmap words.
  constexpr std::size_t kRows = 300;
  LabelArenaBuilder builder;
  std::vector<std::vector<std::uint64_t>> rows;
  for (std::size_t i = 0; i < kRows; ++i) {
    std::vector<std::uint64_t> row(i % 4, 0);  // widths 0..3
    for (std::size_t k = 0; k < row.size(); ++k) row[k] = i * 1000 + k + 1;
    rows.push_back(row);
    builder.Append(rows.back());
  }
  std::vector<std::uint8_t> image = builder.Encode();
  Result<LabelArena> arena = LabelArena::FromBytes(image, "test");
  ASSERT_TRUE(arena.ok());
  ASSERT_EQ(arena->size(), kRows);
  // Random-access order, not sequential, to exercise select from scratch.
  for (std::size_t step : std::vector<std::size_t>{1, 7, 63, 64, 65}) {
    for (std::size_t i = 0; i < kRows; i += step) {
      LabelView view = (*arena)[i];
      ASSERT_EQ(view.size(), i % 4 == 0 ? 0u : i % 4) << "row " << i;
      for (std::size_t k = 0; k < view.size(); ++k) {
        EXPECT_EQ(view[k], i * 1000 + k + 1);
      }
    }
  }
}

TEST(LabelArena, RejectsDamagedImages) {
  LabelArenaBuilder builder;
  for (std::uint64_t i = 1; i <= 100; ++i) builder.Append({{i, i + 1}});
  const std::vector<std::uint8_t> good = builder.Encode();
  ASSERT_TRUE(LabelArena::FromBytes(good, "good").ok());

  // Truncations at every interesting boundary.
  for (std::size_t keep : std::vector<std::size_t>{
           0, 8, 15, 16, good.size() / 2, good.size() - 8,
           good.size() - 1}) {
    std::vector<std::uint8_t> cut(good.begin(), good.begin() + keep);
    Result<LabelArena> arena = LabelArena::FromBytes(cut, "cut");
    EXPECT_FALSE(arena.ok()) << "kept " << keep << " bytes";
    if (!arena.ok()) {
      EXPECT_EQ(arena.status().code(), StatusCode::kCorruption);
    }
  }

  // A bitmap whose population count disagrees with the row count.
  std::vector<std::uint8_t> bad = good;
  const std::size_t bitmap_offset = 16 + 200 * 8;  // header + limbs
  bad[bitmap_offset] ^= 0x02;  // clear/set a start bit
  Result<LabelArena> arena = LabelArena::FromBytes(bad, "bitflip");
  EXPECT_FALSE(arena.ok());
  if (!arena.ok()) {
    EXPECT_EQ(arena.status().code(), StatusCode::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// Catalog v4 image integrity.

class CatalogV4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    PlayOptions options;
    options.acts = 2;
    options.scenes_per_act = 2;
    options.min_speeches_per_scene = 2;
    options.max_speeches_per_scene = 4;
    options.seed = 97;
    doc_.emplace(
        LabeledDocument::FromTree(GeneratePlay("v4", options), /*group=*/5));
    path_ = TempPath("v4_integrity.plc");
    ASSERT_TRUE(SaveCatalog(path_, *doc_).ok());
    image_ = ReadFileBytes(path_);
    ASSERT_GT(image_.size(), 36u + 6u * 24u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Section directory entry s (0-based): {offset, length} parsed from the
  /// fixed header layout (magic 8, crc 4, config 8, rows 8, group 4,
  /// count 4, then 24-byte entries of id/crc/offset/length).
  std::pair<std::size_t, std::size_t> SectionRange(std::size_t s) const {
    const std::size_t entry = 36 + s * 24;
    auto u64_at = [&](std::size_t off) {
      std::uint64_t v = 0;
      for (int b = 7; b >= 0; --b) v = (v << 8) | image_[off + b];
      return v;
    };
    return {static_cast<std::size_t>(u64_at(entry + 8)),
            static_cast<std::size_t>(u64_at(entry + 16))};
  }

  /// Both entry points must report kCorruption for the image at `path`;
  /// OpenCatalogMapped must not quietly fall back to heap mode.
  void ExpectCorrupt(const std::string& context) {
    Result<LoadedCatalog> heap = LoadCatalog(DefaultVfs(), path_);
    EXPECT_FALSE(heap.ok()) << context;
    if (!heap.ok()) {
      EXPECT_EQ(heap.status().code(), StatusCode::kCorruption)
          << context << ": " << heap.status().ToString();
    }
    Result<LoadedCatalog> mapped = OpenCatalogMapped(DefaultVfs(), path_);
    EXPECT_FALSE(mapped.ok()) << context;
    if (!mapped.ok()) {
      EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption)
          << context << ": " << mapped.status().ToString();
    }
  }

  std::optional<LabeledDocument> doc_;
  std::string path_;
  std::vector<std::uint8_t> image_;
};

TEST_F(CatalogV4Test, EverySectionDigestCatchesAByteFlip) {
  // One flip inside each of the six sections, plus the header scalars and
  // the directory itself (covered by the header CRC).
  std::vector<std::pair<std::string, std::size_t>> targets = {
      {"header row_count", 20},
      {"directory entry", 36 + 2 * 24 + 8},
  };
  for (std::size_t s = 0; s < 6; ++s) {
    auto [offset, length] = SectionRange(s);
    ASSERT_GT(length, 0u) << "section " << s + 1;
    ASSERT_LE(offset + length, image_.size());
    targets.emplace_back("section " + std::to_string(s + 1) + " first byte",
                         offset);
    targets.emplace_back("section " + std::to_string(s + 1) + " mid byte",
                         offset + length / 2);
    targets.emplace_back("section " + std::to_string(s + 1) + " last byte",
                         offset + length - 1);
  }
  for (const auto& [context, position] : targets) {
    std::vector<std::uint8_t> tampered = image_;
    tampered[position] ^= 0x40;
    WriteFileBytes(path_, tampered);
    ExpectCorrupt(context + " @ " + std::to_string(position));
  }
  // Sanity: the pristine image still opens after the scan.
  WriteFileBytes(path_, image_);
  EXPECT_TRUE(OpenCatalogMapped(DefaultVfs(), path_).ok());
}

TEST_F(CatalogV4Test, TruncationFailsTyped) {
  for (std::size_t keep : std::vector<std::size_t>{
           0, 7, 35, 36 + 3 * 24, image_.size() / 3, image_.size() / 2,
           image_.size() - 8, image_.size() - 1}) {
    std::vector<std::uint8_t> cut(image_.begin(), image_.begin() + keep);
    WriteFileBytes(path_, cut);
    Result<LoadedCatalog> mapped = OpenCatalogMapped(DefaultVfs(), path_);
    ASSERT_FALSE(mapped.ok()) << "kept " << keep << " bytes";
    // Once the magic survives, any shorter length is kCorruption; below
    // that the file is not identifiable as a catalog at all and the
    // version dispatch reports its usual kParseError.
    EXPECT_EQ(mapped.status().code(),
              keep >= 8 ? StatusCode::kCorruption : StatusCode::kParseError)
        << "kept " << keep << ": " << mapped.status().ToString();
  }
}

TEST_F(CatalogV4Test, MissingFileIsNotFound) {
  Result<LoadedCatalog> mapped =
      OpenCatalogMapped(DefaultVfs(), TempPath("no_such_catalog.plc"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound)
      << mapped.status().ToString();
}

// ---------------------------------------------------------------------------
// Arena-vs-heap bit-identity.

class ArenaHeapEquivalenceTest : public CatalogV4Test {
 protected:
  void SetUp() override {
    CatalogV4Test::SetUp();
    Result<LoadedCatalog> heap = LoadCatalog(DefaultVfs(), path_);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_.emplace(std::move(heap.value()));
    Result<LoadedCatalog> arena = OpenCatalogMapped(DefaultVfs(), path_);
    ASSERT_TRUE(arena.ok()) << arena.status().ToString();
    ASSERT_TRUE(arena->arena_backed()) << "expected the zero-copy open";
    ASSERT_FALSE(heap_->arena_backed());
    arena_.emplace(std::move(arena.value()));
    ASSERT_EQ(arena_->row_count(), heap_->row_count());
  }

  std::optional<LoadedCatalog> heap_;
  std::optional<LoadedCatalog> arena_;
};

TEST_F(ArenaHeapEquivalenceTest, RowAccessorsMatch) {
  for (std::size_t i = 0; i < heap_->row_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(arena_->tag_of(id), heap_->tag_of(id)) << i;
    EXPECT_EQ(arena_->is_element_of(id), heap_->is_element_of(id)) << i;
    EXPECT_EQ(arena_->parent_of(id), heap_->parent_of(id)) << i;
    EXPECT_EQ(arena_->attributes_of(id), heap_->attributes_of(id)) << i;
    EXPECT_EQ(arena_->self_of(id), heap_->self_of(id)) << i;
    LabelView a = arena_->label_view(id);
    LabelView h = heap_->label_view(id);
    ASSERT_EQ(a.size(), h.size()) << i;
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], h[k]) << i;
  }
}

TEST_F(ArenaHeapEquivalenceTest, ScalarOracleAnswersMatch) {
  const std::size_t n = heap_->row_count();
  for (std::size_t x = 0; x < n; x += 3) {
    EXPECT_EQ(arena_->OrderOf(x), heap_->OrderOf(x)) << x;
    for (std::size_t y = 0; y < n; y += 5) {
      EXPECT_EQ(arena_->IsAncestor(x, y), heap_->IsAncestor(x, y))
          << x << " " << y;
      EXPECT_EQ(arena_->IsParent(x, y), heap_->IsParent(x, y))
          << x << " " << y;
    }
  }
}

TEST_F(ArenaHeapEquivalenceTest, BatchKernelsMatch) {
  const std::size_t n = heap_->row_count();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<NodeId> candidates;
  for (std::size_t x = 0; x < n; x += 2) {
    pairs.emplace_back(static_cast<NodeId>(x),
                       static_cast<NodeId>((x * 7 + 3) % n));
    candidates.push_back(static_cast<NodeId>((x * 5 + 1) % n));
  }
  std::vector<std::uint8_t> heap_bits, arena_bits;
  heap_->IsAncestorBatch(pairs, &heap_bits);
  arena_->IsAncestorBatch(pairs, &arena_bits);
  EXPECT_EQ(arena_bits, heap_bits);

  for (NodeId anchor : {NodeId{0}, NodeId{1}, static_cast<NodeId>(n / 2)}) {
    std::vector<NodeId> heap_desc, arena_desc, heap_anc, arena_anc;
    heap_->SelectDescendants(anchor, candidates, &heap_desc);
    arena_->SelectDescendants(anchor, candidates, &arena_desc);
    EXPECT_EQ(arena_desc, heap_desc) << "anchor " << anchor;
    heap_->SelectAncestors(anchor, candidates, &heap_anc);
    arena_->SelectAncestors(anchor, candidates, &arena_anc);
    EXPECT_EQ(arena_anc, heap_anc) << "anchor " << anchor;
  }
}

TEST_F(ArenaHeapEquivalenceTest, XPathEvaluationMatchesLiveDocument) {
  // Same query pipeline all three ways: the live document, a LabelTable +
  // oracle built over the heap catalog, and one over the arena catalog.
  LabelTable heap_table(*heap_);
  LabelTable arena_table(*arena_);
  for (const char* q :
       {"/play", "/play//act", "//speech/speaker", "/play//scene[2]",
        "//act[1]//speech", "//line"}) {
    Result<std::vector<NodeId>> live = doc_->Query(q);
    ASSERT_TRUE(live.ok()) << q;
    Result<std::vector<NodeId>> heap_ids =
        EvaluateSnapshot(heap_table, *heap_, q);
    Result<std::vector<NodeId>> arena_ids =
        EvaluateSnapshot(arena_table, *arena_, q);
    ASSERT_TRUE(heap_ids.ok()) << q;
    ASSERT_TRUE(arena_ids.ok()) << q;
    EXPECT_EQ(arena_ids.value(), heap_ids.value()) << q;
    // Rows are preorder, so catalog NodeIds equal live-tree preorder
    // ranks; compare result cardinality against the live document.
    EXPECT_EQ(arena_ids.value().size(), live.value().size()) << q;
  }
}

TEST_F(ArenaHeapEquivalenceTest, EpochViewsAgreeAcrossModes) {
  Result<LoadedCatalog> arena = OpenCatalogMapped(DefaultVfs(), path_);
  ASSERT_TRUE(arena.ok());
  EpochView arena_view(std::move(arena.value()));
  Result<LabeledDocument> materialized = LabeledDocument::Load(path_);
  ASSERT_TRUE(materialized.ok());
  EpochView heap_view(std::move(materialized.value()));

  ASSERT_TRUE(arena_view.arena_backed());
  ASSERT_FALSE(heap_view.arena_backed());
  EXPECT_EQ(arena_view.node_count(), heap_view.node_count());
  // The memory win the arena exists for: a sealed view is strictly
  // lighter than the same epoch held as heap BigInts. (The ≥2x acceptance
  // number is measured on the full Shakespeare corpus by
  // BM_CatalogLoadV3VsV4; this fixture is deliberately tiny.)
  EXPECT_GT(arena_view.label_store_bytes(), 0u);
  EXPECT_GT(heap_view.label_store_bytes(), arena_view.label_store_bytes());
  for (const char* q : {"/play//act", "//speech/speaker", "//line"}) {
    Result<std::vector<NodeId>> a = arena_view.Query(q, /*num_workers=*/1);
    Result<std::vector<NodeId>> h = heap_view.Query(q, /*num_workers=*/1);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(h.ok()) << q;
    EXPECT_EQ(a.value(), h.value()) << q;
  }
  // Lazy materialization out of the arena reproduces the live document.
  EXPECT_EQ(arena_view.document().tree().node_count(),
            heap_view.document().tree().node_count());
}

}  // namespace
}  // namespace primelabel
