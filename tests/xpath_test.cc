#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/ordered_prime_scheme.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "store/label_table.h"
#include "xml/parser.h"
#include "xml/shakespeare.h"
#include "xpath/oracle.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace primelabel {
namespace {

// --- Lexer / parser -----------------------------------------------------

TEST(XPathParser, SimplePaths) {
  Result<XPathQuery> q = ParseXPath("/play//act");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->steps.size(), 2u);
  // Leading /play is rooted: descendant-or-self semantics.
  EXPECT_EQ(q->steps[0].axis, XPathAxis::kDescendant);
  EXPECT_EQ(q->steps[0].name_test, "play");
  EXPECT_EQ(q->steps[1].axis, XPathAxis::kDescendant);
  EXPECT_EQ(q->steps[1].name_test, "act");
  EXPECT_FALSE(q->steps[1].position.has_value());
}

TEST(XPathParser, ChildAxisAfterFirstStep) {
  Result<XPathQuery> q = ParseXPath("/play/act/scene");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].axis, XPathAxis::kChild);
  EXPECT_EQ(q->steps[2].axis, XPathAxis::kChild);
}

TEST(XPathParser, PositionalPredicate) {
  Result<XPathQuery> q = ParseXPath("/play//act[4]");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->steps[1].position.has_value());
  EXPECT_EQ(*q->steps[1].position, 4);
}

TEST(XPathParser, ExplicitAxes) {
  Result<XPathQuery> q =
      ParseXPath("/play//act[3]//Following::act");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->steps.size(), 3u);
  EXPECT_EQ(q->steps[2].axis, XPathAxis::kFollowing);
  EXPECT_EQ(q->steps[2].name_test, "act");
}

TEST(XPathParser, AxisNamesAreCaseInsensitive) {
  for (const char* text :
       {"/a//Following-sibling::b[2]", "/a//Following-Sibling::b[2]",
        "/a//following-sibling::b[2]"}) {
    Result<XPathQuery> q = ParseXPath(text);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_EQ(q->steps[1].axis, XPathAxis::kFollowingSibling);
    EXPECT_EQ(*q->steps[1].position, 2);
  }
}

TEST(XPathParser, PrecedingAxes) {
  Result<XPathQuery> q = ParseXPath("/speech[4]//Preceding::line");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].axis, XPathAxis::kPreceding);
}

TEST(XPathParser, StarNameTest) {
  Result<XPathQuery> q = ParseXPath("//act/*");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].name_test, "*");
}

TEST(XPathParser, AttributePredicate) {
  Result<XPathQuery> q = ParseXPath("//speaker[@name='HAMLET']");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->steps[0].attribute_equals.has_value());
  EXPECT_EQ(q->steps[0].attribute_equals->first, "name");
  EXPECT_EQ(q->steps[0].attribute_equals->second, "HAMLET");
  // Double quotes work too, and combine with a position predicate.
  Result<XPathQuery> q2 = ParseXPath("//speech[@id=\"s1\"][2]");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_TRUE(q2->steps[0].attribute_equals.has_value());
  EXPECT_EQ(*q2->steps[0].position, 2);
}

TEST(XPathParser, TextPredicate) {
  Result<XPathQuery> q = ParseXPath("//author[text()='John']");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->steps[0].text_equals.has_value());
  EXPECT_EQ(*q->steps[0].text_equals, "John");
  // Combined with a position predicate (the intro's book/author[2]/"John").
  Result<XPathQuery> q2 = ParseXPath("//book/author[text()='John'][2]");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_TRUE(q2->steps[1].text_equals.has_value());
  EXPECT_EQ(*q2->steps[1].position, 2);
  // Round-trips through ToString.
  Result<XPathQuery> reparsed = ParseXPath(q2->ToString());
  ASSERT_TRUE(reparsed.ok()) << q2->ToString();
  EXPECT_EQ(reparsed->steps[1].text_equals, q2->steps[1].text_equals);
}

TEST(XPathParser, RejectsMalformedTextPredicates) {
  EXPECT_FALSE(ParseXPath("//a[text()]").ok());
  EXPECT_FALSE(ParseXPath("//a[text(]").ok());
  EXPECT_FALSE(ParseXPath("//a[text()=]").ok());
  EXPECT_FALSE(ParseXPath("//a[text()='x'][text()='y']").ok());
}

TEST(XPathEvalText, FiltersByDirectTextContent) {
  Result<XmlTree> doc = ParseXml(
      "<bib>"
      "<book><author>John</author><author>Jane</author></book>"
      "<book><author>John</author></book>"
      "</bib>");
  ASSERT_TRUE(doc.ok());
  LabelTable table(*doc);
  IntervalScheme scheme;
  scheme.LabelTree(*doc);
  SchemeOracle oracle(&scheme, [&scheme](NodeId id) { return scheme.low(id); });
  QueryContext ctx;
  ctx.table = &table;
  ctx.oracle = &oracle;
  XPathEvaluator evaluator(&ctx);
  EXPECT_EQ(evaluator.Evaluate("//author[text()='John']")->size(), 2u);
  EXPECT_EQ(evaluator.Evaluate("//author[text()='Jane']")->size(), 1u);
  EXPECT_EQ(evaluator.Evaluate("//author[text()='Nobody']")->size(), 0u);
  // Elements without text children never match.
  EXPECT_EQ(evaluator.Evaluate("//book[text()='John']")->size(), 0u);
  // Oracle agrees.
  Result<XPathQuery> q = ParseXPath("//author[text()='John']");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(evaluator.Evaluate(q.value()),
            EvaluateXPathOnTree(*doc, q.value()));
}

TEST(XPathParser, RejectsMalformedAttributePredicates) {
  EXPECT_FALSE(ParseXPath("//a[@]").ok());
  EXPECT_FALSE(ParseXPath("//a[@k]").ok());
  EXPECT_FALSE(ParseXPath("//a[@k=]").ok());
  EXPECT_FALSE(ParseXPath("//a[@k='v]").ok());          // unterminated
  EXPECT_FALSE(ParseXPath("//a[@k='v'][@j='w'][@i='u']").ok());  // dup attr
  EXPECT_FALSE(ParseXPath("//a[1][2]").ok());           // dup position
}

TEST(XPathParser, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("play").ok());          // missing leading slash
  EXPECT_FALSE(ParseXPath("/play[").ok());
  EXPECT_FALSE(ParseXPath("/play[0]").ok());      // positions are 1-based
  EXPECT_FALSE(ParseXPath("/play[x]").ok());
  EXPECT_FALSE(ParseXPath("/play//Unknown::a").ok());
  EXPECT_FALSE(ParseXPath("//").ok());
  EXPECT_FALSE(ParseXPath("/a/../b").ok());
}

TEST(XPathParser, ToStringRoundTripsStructure) {
  Result<XPathQuery> q = ParseXPath("/play//act[3]//Following::act");
  ASSERT_TRUE(q.ok());
  Result<XPathQuery> reparsed = ParseXPath(q->ToString());
  ASSERT_TRUE(reparsed.ok()) << q->ToString();
  EXPECT_EQ(reparsed->steps.size(), q->steps.size());
  for (std::size_t i = 0; i < q->steps.size(); ++i) {
    EXPECT_EQ(reparsed->steps[i].axis, q->steps[i].axis);
    EXPECT_EQ(reparsed->steps[i].name_test, q->steps[i].name_test);
    EXPECT_EQ(reparsed->steps[i].position, q->steps[i].position);
  }
}

// --- Evaluation ----------------------------------------------------------

/// Fixture evaluating queries on a small play through a chosen scheme.
class XPathEvalTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    PlayOptions options;
    options.acts = 3;
    options.scenes_per_act = 2;
    options.min_speeches_per_scene = 4;
    options.max_speeches_per_scene = 6;
    options.min_lines_per_speech = 1;
    options.max_lines_per_speech = 3;
    options.personae = 4;
    options.seed = 77;
    tree_ = std::make_unique<XmlTree>(GeneratePlay("test", options));
    table_ = std::make_unique<LabelTable>(*tree_);

    const std::string& which = GetParam();
    if (which == "interval") {
      auto interval = std::make_unique<IntervalScheme>();
      interval->LabelTree(*tree_);
      IntervalScheme* raw = interval.get();
      order_ = [raw](NodeId id) { return raw->low(id); };
      scheme_ = std::move(interval);
    } else if (which == "prefix-2") {
      auto prefix = std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
      prefix->LabelTree(*tree_);
      // Prefix labels sort lexicographically in document order; rank via
      // the tree as the scheme's order proxy.
      order_ = [this](NodeId id) {
        return static_cast<std::uint64_t>(id);  // arena ids are preorder here
      };
      scheme_ = std::move(prefix);
    } else {
      auto prime = std::make_unique<OrderedPrimeScheme>();
      prime->LabelTree(*tree_);
      OrderedPrimeScheme* raw = prime.get();
      order_ = [raw](NodeId id) { return raw->OrderOf(id); };
      scheme_ = std::move(prime);
    }
    oracle_ = std::make_unique<SchemeOracle>(scheme_.get(), order_);
    ctx_.table = table_.get();
    ctx_.oracle = oracle_.get();
  }

  std::vector<NodeId> Run(const std::string& query) {
    XPathEvaluator evaluator(&ctx_);
    Result<std::vector<NodeId>> result = evaluator.Evaluate(query);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    return result.ok() ? result.value() : std::vector<NodeId>{};
  }

  std::unique_ptr<XmlTree> tree_;
  std::unique_ptr<LabelTable> table_;
  std::unique_ptr<LabelingScheme> scheme_;
  OrderFn order_;
  std::unique_ptr<SchemeOracle> oracle_;
  QueryContext ctx_;
};

TEST_P(XPathEvalTest, DescendantScan) {
  EXPECT_EQ(Run("/play//act").size(), 3u);
  EXPECT_EQ(Run("/play//scene").size(), 6u);
  EXPECT_EQ(Run("//persona").size(), 4u);
  EXPECT_EQ(Run("//line").size(), tree_->FindAll("line").size());
}

TEST_P(XPathEvalTest, ChildAxisNarrowsToDirectChildren) {
  EXPECT_EQ(Run("/play/act").size(), 3u);
  EXPECT_EQ(Run("/play/scene").size(), 0u);  // scenes are grandchildren
  EXPECT_EQ(Run("/play/act/scene").size(), 6u);
  EXPECT_EQ(Run("/play/personae/persona").size(), 4u);
}

TEST_P(XPathEvalTest, PositionalPredicates) {
  std::vector<NodeId> second_act = Run("/play//act[2]");
  ASSERT_EQ(second_act.size(), 1u);
  EXPECT_EQ(second_act[0], tree_->FindAll("act")[1]);
  EXPECT_EQ(Run("/play//act[4]").size(), 0u);  // only 3 acts
  // scene[2] exists in each of the 3 acts.
  EXPECT_EQ(Run("/play//scene[2]").size(), 3u);
}

TEST_P(XPathEvalTest, FollowingAxis) {
  // Acts following act 2: act 3 only.
  std::vector<NodeId> result = Run("/play//act[2]//Following::act");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], tree_->FindAll("act")[2]);
  // Scenes following act 2: the scenes of act 3 (2 of them).
  EXPECT_EQ(Run("/play//act[2]//Following::scene").size(), 2u);
}

TEST_P(XPathEvalTest, PrecedingAxis) {
  std::vector<NodeId> result = Run("/play//act[2]//Preceding::act");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], tree_->FindAll("act")[0]);
  // Personae nodes precede every act.
  EXPECT_EQ(Run("/play//act[1]//Preceding::persona").size(), 4u);
}

TEST_P(XPathEvalTest, SiblingAxes) {
  std::vector<NodeId> acts = tree_->FindAll("act");
  std::vector<NodeId> following =
      Run("/play//act[1]//Following-sibling::act");
  EXPECT_EQ(following, (std::vector<NodeId>{acts[1], acts[2]}));
  std::vector<NodeId> preceding =
      Run("/play//act[3]//Preceding-sibling::act");
  EXPECT_EQ(preceding, (std::vector<NodeId>{acts[0], acts[1]}));
}

TEST_P(XPathEvalTest, ResultsAreInDocumentOrder) {
  std::vector<NodeId> speeches = Run("/play//speech");
  std::vector<NodeId> expected = tree_->FindAll("speech");
  EXPECT_EQ(speeches, expected);
}

TEST_P(XPathEvalTest, StarMatchesAllElements) {
  // Children of acts: per act one title + 2 scenes.
  EXPECT_EQ(Run("/play/act/*").size(), 9u);
}

TEST_P(XPathEvalTest, ReverseAxes) {
  // Parents of scenes are the acts; ancestors of lines include acts.
  EXPECT_EQ(Run("/play//scene//Parent::act").size(), 3u);
  EXPECT_EQ(Run("/play//line//Ancestor::act").size(), 3u);
  EXPECT_EQ(Run("/play//line//Ancestor::play").size(), 1u);
  // Ancestor of the root: nothing.
  EXPECT_EQ(Run("/play//Ancestor::play").size(), 0u);
  // Mixed chain: second act's scenes' parent is the second act itself.
  std::vector<NodeId> result = Run("/play//act[2]/scene//Parent::act");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], tree_->FindAll("act")[1]);
}

TEST_P(XPathEvalTest, AttributePredicateFiltersRows) {
  // Speakers carry a name attribute; pick one that occurs and query it.
  std::vector<NodeId> speakers = tree_->FindAll("speaker");
  ASSERT_FALSE(speakers.empty());
  std::string name = tree_->node(speakers[0]).attributes[0].second;
  std::size_t expected = 0;
  for (NodeId speaker : speakers) {
    if (tree_->node(speaker).attributes[0].second == name) ++expected;
  }
  std::vector<NodeId> result = Run("//speaker[@name='" + name + "']");
  EXPECT_EQ(result.size(), expected);
  for (NodeId id : result) {
    EXPECT_EQ(tree_->node(id).attributes[0].second, name);
  }
  EXPECT_EQ(Run("//speaker[@name='NOBODY-BY-THIS-NAME']").size(), 0u);
  EXPECT_EQ(Run("//line[@name='HAMLET']").size(), 0u);  // no such attribute
}

TEST_P(XPathEvalTest, RootStepMatchesRootItself) {
  std::vector<NodeId> result = Run("/play");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], tree_->root());
}

INSTANTIATE_TEST_SUITE_P(Schemes, XPathEvalTest,
                         ::testing::Values("interval", "prefix-2",
                                           "prime-ordered"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace primelabel
