// BigInt arithmetic validated against an independent oracle: the expected
// quotients/remainders/products below were computed with Python's
// arbitrary-precision integers (see the generator note in the .inc file).

#include <gtest/gtest.h>

#include "bigint/bigint.h"

namespace primelabel {
namespace {

struct DivisionVector {
  const char* a;
  const char* b;
  const char* quotient;
  const char* remainder;
};

struct MulVector {
  const char* a;
  const char* b;
  const char* product;
};

#include "bigint_vectors.inc"

BigInt Parse(const char* text) {
  Result<BigInt> value = BigInt::FromDecimalString(text);
  EXPECT_TRUE(value.ok()) << text;
  return value.ok() ? value.value() : BigInt();
}

TEST(BigIntVectors, DivisionMatchesPython) {
  for (const DivisionVector& v : kDivisionVectors) {
    BigInt a = Parse(v.a);
    BigInt b = Parse(v.b);
    auto [q, r] = BigInt::DivMod(a, b);
    EXPECT_EQ(q.ToDecimalString(), v.quotient) << v.a << " / " << v.b;
    EXPECT_EQ(r.ToDecimalString(), v.remainder) << v.a << " % " << v.b;
    // The operator forms (with their fast paths) agree too.
    EXPECT_EQ((a / b).ToDecimalString(), v.quotient);
    EXPECT_EQ((a % b).ToDecimalString(), v.remainder);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigIntVectors, MultiplicationMatchesPython) {
  for (const MulVector& v : kMulVectors) {
    BigInt a = Parse(v.a);
    BigInt b = Parse(v.b);
    EXPECT_EQ((a * b).ToDecimalString(), v.product);
    EXPECT_EQ((b * a).ToDecimalString(), v.product);
  }
}

}  // namespace
}  // namespace primelabel
