// Equivalence properties of the divisibility fast-path engine
// (bigint/reduction.h): every layer — fingerprints, reciprocal-cached
// reduction, subproduct/remainder trees — must be bit-identical to the
// naive BigInt DivMod path, on random values and on real corpus labels.
//
// The Parallel* suite drives batched queries from concurrent threads and
// is part of the TSan target (scripts/check.sh runs `ctest -R Parallel`
// under -DPRIMELABEL_SANITIZE=thread).

#include "bigint/reduction.h"

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordered_prime_scheme.h"
#include "labeling/prime_top_down.h"
#include "util/rng.h"
#include "xml/shakespeare.h"
#include "xml/tree.h"

namespace primelabel {
namespace {

using U128 = unsigned __int128;

/// Uniform random nonnegative BigInt of exactly `words` 64-bit words (the
/// top word is forced nonzero so bit sizes are as requested).
BigInt RandomBigInt(Rng* rng, int words) {
  BigInt value;
  for (int i = 0; i < words; ++i) {
    std::uint64_t word = rng->Next();
    if (i == 0 && word == 0) word = 1;  // first word becomes the top word
    value = (value << 64) + BigInt::FromUint64(word);
  }
  return value;
}

/// First `count` primes by trial division — label factories for synthetic
/// divisible pairs.
std::vector<std::uint64_t> FirstPrimes(int count) {
  std::vector<std::uint64_t> primes;
  for (std::uint64_t n = 2; static_cast<int>(primes.size()) < count; ++n) {
    bool prime = true;
    for (std::uint64_t p : primes) {
      if (p * p > n) break;
      if (n % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(n);
  }
  return primes;
}

TEST(FingerprintTable, ChunksCoverAllSixtyFourPrimes) {
  int covered = 0;
  U128 check = 1;
  for (const FingerprintChunk& chunk : kFingerprintChunkTable) {
    EXPECT_EQ(chunk.first, covered);
    ASSERT_GT(chunk.count, 0);
    U128 product = 1;
    for (int k = 0; k < chunk.count; ++k) {
      product *= kFingerprintPrimes[chunk.first + k];
    }
    EXPECT_EQ(static_cast<std::uint64_t>(product), chunk.product);
    EXPECT_EQ(product >> 64, 0u) << "chunk product must fit a word";
    covered += chunk.count;
    check *= 1;  // silence unused in release
  }
  EXPECT_EQ(covered, 64);
}

TEST(Fingerprint, FromScratchMarksExactlyTheDividingPrimes) {
  // 2^3 * 3 * 31 * 127 — mask must have exactly those bits.
  BigInt value = BigInt(8) * BigInt(3) * BigInt(31) * BigInt(127);
  LabelFingerprint fp = FingerprintOf(value);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kFingerprintPrimes.size(); ++i) {
    if ((value % BigInt(static_cast<std::int64_t>(kFingerprintPrimes[i])))
            .IsZero()) {
      expected |= std::uint64_t{1} << i;
    }
  }
  EXPECT_EQ(fp.prime_mask, expected);
  EXPECT_EQ(fp.bit_length, value.BitLength());
  EXPECT_EQ(fp.trailing_zeros, 3);
}

TEST(Fingerprint, NeverRejectsATrueDivisorPair) {
  // Soundness: x | y implies FingerprintMayDivide(fp(x), fp(y)). Build 10k
  // guaranteed-divisible pairs from random prime products.
  std::vector<std::uint64_t> primes = FirstPrimes(200);
  Rng rng(2024);
  for (int iter = 0; iter < 10000; ++iter) {
    BigInt x(1);
    BigInt y(1);
    for (std::uint64_t p : primes) {
      int roll = static_cast<int>(rng.Below(10));
      if (roll < 2) {  // factor of both
        BigInt factor(static_cast<std::int64_t>(p));
        x *= factor;
        y *= factor;
      } else if (roll < 4) {  // factor of y only: x still divides y
        y *= BigInt(static_cast<std::int64_t>(p));
      }
    }
    ASSERT_TRUE(y.IsDivisibleBy(x));
    EXPECT_TRUE(FingerprintMayDivide(FingerprintOf(x), FingerprintOf(y)))
        << "fingerprint rejected a genuine divisor pair at iter " << iter;
  }
}

TEST(Fingerprint, ProperWitnessNeverRejectsAProperDivisorPair) {
  // Soundness of the strict variant: x | y with x != y forces y >= 2x, so
  // the strict bit-length bound may never reject a proper divisor pair.
  std::vector<std::uint64_t> primes = FirstPrimes(200);
  Rng rng(31337);
  for (int iter = 0; iter < 10000; ++iter) {
    BigInt x(1);
    BigInt y(1);
    bool proper = false;
    for (std::uint64_t p : primes) {
      int roll = static_cast<int>(rng.Below(10));
      if (roll < 2) {
        BigInt factor(static_cast<std::int64_t>(p));
        x *= factor;
        y *= factor;
      } else if (roll < 4) {
        y *= BigInt(static_cast<std::int64_t>(p));
        proper = true;  // y gained a factor x lacks
      }
    }
    if (!proper) continue;
    ASSERT_TRUE(y.IsDivisibleBy(x));
    EXPECT_TRUE(
        FingerprintMayProperlyDivide(FingerprintOf(x), FingerprintOf(y)))
        << "strict witness rejected a proper divisor pair at iter " << iter;
  }
}

TEST(Fingerprint, WitnessesAgreeWithExactDivisionOnRandomPairs) {
  // On arbitrary pairs a rejection must always be correct (the filter may
  // pass non-divisible pairs — that is what the exact test is for).
  Rng rng(77);
  for (int iter = 0; iter < 10000; ++iter) {
    BigInt x = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(3)));
    BigInt y = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(4)));
    if (!FingerprintMayDivide(FingerprintOf(x), FingerprintOf(y))) {
      EXPECT_FALSE(y.IsDivisibleBy(x)) << "false rejection at iter " << iter;
    }
  }
}

TEST(Fingerprint, IncrementalExtensionMatchesFromScratch) {
  // Simulate labeling: child = parent * self with self drawn from primes
  // inside and far beyond the tracked range.
  std::vector<std::uint64_t> primes = FirstPrimes(400);
  Rng rng(99);
  for (int chain = 0; chain < 200; ++chain) {
    BigInt label(1);
    LabelFingerprint fp = FingerprintOf(label);
    for (int depth = 0; depth < 12; ++depth) {
      std::uint64_t self = primes[rng.Below(primes.size())];
      label *= BigInt::FromUint64(self);
      fp = ExtendFingerprintByPrime(fp, self, label);
      LabelFingerprint scratch = FingerprintOf(label);
      ASSERT_EQ(fp.prime_mask, scratch.prime_mask);
      ASSERT_EQ(fp.residues, scratch.residues);
      ASSERT_EQ(fp.bit_length, scratch.bit_length);
      ASSERT_EQ(fp.trailing_zeros, scratch.trailing_zeros);
    }
  }
}

TEST(Reciprocal64, ModMatchesModU64OnRandomValues) {
  Rng rng(4242);
  std::vector<std::uint64_t> divisors = {1, 2, 3, 5, 0xFFFFFFFFull,
                                         1ull << 32, 1ull << 63, ~0ull};
  for (int i = 0; i < 200; ++i) divisors.push_back(rng.Next() | 1);
  for (std::uint64_t d : divisors) {
    Reciprocal64 reciprocal(d);
    EXPECT_EQ(reciprocal.Mod(BigInt()), 0u);
    for (int words = 1; words <= 6; ++words) {
      for (int rep = 0; rep < 20; ++rep) {
        BigInt value = RandomBigInt(&rng, words);
        ASSERT_EQ(reciprocal.Mod(value), value.ModU64(d))
            << "d=" << d << " value=" << value.ToDecimalString();
      }
    }
  }
}

TEST(Reciprocal64, Mod128MatchesWideDivision) {
  Rng rng(11);
  for (int iter = 0; iter < 20000; ++iter) {
    std::uint64_t d = rng.Next();
    if (d == 0) d = 1;
    std::uint64_t hi = rng.Below(3) == 0 ? 0 : rng.Next();
    std::uint64_t lo = rng.Next();
    U128 value = (static_cast<U128>(hi) << 64) | lo;
    Reciprocal64 reciprocal(d);
    ASSERT_EQ(reciprocal.Mod128(hi, lo),
              static_cast<std::uint64_t>(value % d))
        << "d=" << d << " hi=" << hi << " lo=" << lo;
  }
}

TEST(ReciprocalDivisor, DividesMatchesIsDivisibleByOnRandomPairs) {
  Rng rng(555);
  ReciprocalDivisor cached;
  for (int iter = 0; iter < 10000; ++iter) {
    // Divisors from 1 word (Möller–Granlund path) to 8 words (Barrett).
    BigInt divisor = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(8)));
    BigInt dividend;
    if (rng.Chance(50)) {
      // Construct an exactly divisible dividend.
      dividend = divisor * RandomBigInt(&rng, 1 + static_cast<int>(
                                                  rng.Below(4)));
    } else {
      dividend = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(12)));
    }
    cached.Assign(divisor);
    ASSERT_EQ(cached.Divides(dividend), dividend.IsDivisibleBy(divisor))
        << "iter " << iter << " divisor=" << divisor.ToDecimalString()
        << " dividend=" << dividend.ToDecimalString();
  }
}

TEST(ReciprocalDivisor, ModMatchesDivModOnRandomPairs) {
  Rng rng(556);
  ReciprocalDivisor cached;
  for (int iter = 0; iter < 4000; ++iter) {
    BigInt divisor = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(8)));
    BigInt dividend = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(12)));
    cached.Assign(divisor);
    ASSERT_EQ(cached.Mod(dividend), BigInt::DivMod(dividend, divisor).second)
        << "iter " << iter << " divisor=" << divisor.ToDecimalString()
        << " dividend=" << dividend.ToDecimalString();
  }
}

TEST(ReciprocalDivisor, ReassignmentIsClean) {
  // The anchor-run pattern: one object, many divisors, interleaved sizes so
  // the word path and the Barrett path alternate over the same scratch.
  Rng rng(557);
  ReciprocalDivisor cached;
  for (int iter = 0; iter < 500; ++iter) {
    int words = (iter % 2 == 0) ? 1 : 3 + static_cast<int>(rng.Below(4));
    BigInt divisor = RandomBigInt(&rng, words);
    cached.Assign(divisor);
    for (int rep = 0; rep < 4; ++rep) {
      BigInt dividend = RandomBigInt(&rng, 1 + static_cast<int>(
                                               rng.Below(10)));
      ASSERT_EQ(cached.Divides(dividend), dividend.IsDivisibleBy(divisor));
    }
  }
}

TEST(SubproductTree, RemaindersMatchModU64) {
  Rng rng(888);
  for (std::size_t count : {1u, 2u, 3u, 5u, 16u, 33u, 64u, 100u}) {
    std::vector<std::uint64_t> moduli;
    for (std::size_t i = 0; i < count; ++i) moduli.push_back(rng.Next() | 1);
    SubproductTree tree(moduli);
    ASSERT_EQ(tree.size(), count);
    for (int rep = 0; rep < 10; ++rep) {
      BigInt y = RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(20)));
      std::vector<std::uint64_t> rems;
      tree.RemaindersOf(y, &rems);
      ASSERT_EQ(rems.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(rems[i], y.ModU64(moduli[i]))
            << "count=" << count << " i=" << i;
      }
    }
  }
}

TEST(SubproductTree, BigIntLeavesMatchOperatorMod) {
  Rng rng(889);
  std::vector<BigInt> leaves;
  for (int i = 0; i < 23; ++i) {
    leaves.push_back(RandomBigInt(&rng, 1 + static_cast<int>(rng.Below(3))));
  }
  SubproductTree tree(leaves);
  BigInt y = RandomBigInt(&rng, 40);
  std::vector<BigInt> rems;
  tree.RemaindersOf(y, &rems);
  ASSERT_EQ(rems.size(), leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(rems[i], y % leaves[i]) << "i=" << i;
  }
}

TEST(SubproductTree, CombineResiduesMatchesNaiveCofactorSum) {
  Rng rng(890);
  for (std::size_t count : {1u, 2u, 3u, 7u, 8u, 20u, 64u}) {
    std::vector<std::uint64_t> moduli;
    std::vector<std::uint64_t> alpha;
    for (std::size_t i = 0; i < count; ++i) {
      moduli.push_back((rng.Next() | 1) >> 16);
      alpha.push_back(rng.Next() >> 32);
    }
    SubproductTree tree(moduli);
    BigInt naive;
    for (std::size_t i = 0; i < count; ++i) {
      naive += BigInt::FromUint64(alpha[i]) *
               (tree.product() / BigInt::FromUint64(moduli[i]));
    }
    EXPECT_EQ(tree.CombineResidues(alpha), naive) << "count=" << count;
  }
}

// --- Corpus-label equivalence ----------------------------------------------

/// Attached nodes of `tree` bucketed by depth.
std::vector<std::vector<NodeId>> NodesByDepth(const XmlTree& tree) {
  std::vector<std::vector<NodeId>> by_depth;
  tree.Preorder([&](NodeId id, int depth) {
    if (static_cast<std::size_t>(depth) >= by_depth.size()) {
      by_depth.resize(depth + 1);
    }
    by_depth[depth].push_back(id);
  });
  return by_depth;
}

TEST(CorpusEquivalence, ShakespeareAncestorPairsSampledPerDepth) {
  // All fast-path layers vs naive division on real labels: sample node
  // pairs from every depth pairing of the Shakespeare corpus.
  XmlTree tree = GenerateShakespeareCorpus(3);
  PrimeTopDownScheme scheme;
  scheme.LabelTree(tree);
  std::vector<std::vector<NodeId>> by_depth = NodesByDepth(tree);
  Rng rng(31337);
  ReciprocalDivisor cached;
  constexpr std::size_t kPerPairOfDepths = 12;
  for (std::size_t da = 0; da < by_depth.size(); ++da) {
    for (std::size_t db = 0; db < by_depth.size(); ++db) {
      for (std::size_t s = 0; s < kPerPairOfDepths; ++s) {
        NodeId a = by_depth[da][rng.Below(by_depth[da].size())];
        NodeId b = by_depth[db][rng.Below(by_depth[db].size())];
        const BigInt& la = scheme.label(a);
        const BigInt& lb = scheme.label(b);
        bool naive = a != b && lb.IsDivisibleBy(la);
        // Layer 1 soundness on this pair.
        if (naive) {
          ASSERT_TRUE(
              FingerprintMayDivide(FingerprintOf(la), FingerprintOf(lb)));
        }
        // Layer 2 exactness on this pair.
        cached.Assign(la);
        ASSERT_EQ(cached.Divides(lb), lb.IsDivisibleBy(la))
            << "depths " << da << "/" << db;
        // And the scheme's own scalar answer stays the source of truth.
        ASSERT_EQ(naive, scheme.IsAncestor(a, b));
      }
    }
  }
}

TEST(ParallelBatchQueries, ConcurrentIsAncestorBatchMatchesScalar) {
  // Batched queries must be safe to issue from several threads against one
  // const scheme (the plan executor does exactly that); run under TSan via
  // scripts/check.sh.
  XmlTree tree = GenerateShakespeareCorpus(2);
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  std::vector<NodeId> nodes;
  tree.Preorder([&](NodeId id, int) { nodes.push_back(id); });
  Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 2000; ++i) {
    pairs.emplace_back(nodes[rng.Below(nodes.size())],
                       nodes[rng.Below(nodes.size())]);
  }
  std::vector<std::uint8_t> expected;
  scheme.IsAncestorBatch(pairs, &expected);
  ASSERT_EQ(expected.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(expected[i] != 0,
              scheme.IsAncestor(pairs[i].first, pairs[i].second));
  }
  std::vector<std::vector<std::uint8_t>> results(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&scheme, &pairs, &results, t] {
      scheme.IsAncestorBatch(pairs, &results[t]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(results[t], expected) << "thread " << t;
  }
}

TEST(ParallelBatchQueries, ConcurrentSelectDescendantsMatchesScalar) {
  XmlTree tree = GenerateShakespeareCorpus(2);
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  std::vector<NodeId> nodes;
  tree.Preorder([&](NodeId id, int) { nodes.push_back(id); });
  NodeId anchor = tree.root();
  std::vector<NodeId> expected;
  scheme.SelectDescendants(anchor, nodes, &expected);
  std::vector<NodeId> loop;
  for (NodeId candidate : nodes) {
    if (scheme.IsAncestor(anchor, candidate)) loop.push_back(candidate);
  }
  ASSERT_EQ(expected, loop);
  std::vector<std::vector<NodeId>> results(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&scheme, &nodes, &results, anchor, t] {
      scheme.SelectDescendants(anchor, nodes, &results[t]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(results[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace primelabel
