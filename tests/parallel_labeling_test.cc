// Parallel LabelTree determinism. The whole point of the preorder-ranked
// PrimeBlock hand-out is that labels never depend on worker scheduling:
// labeling with 1, 2 or 8 workers must produce byte-identical labels (and
// identical scheme-internal state, as far as LabelString exposes it) to the
// sequential run — on the real-shaped Shakespeare corpus, on synthetic
// wide-fanout trees, and after the tree keeps mutating post-label.
//
// These tests are the TSan target: configure with
// -DPRIMELABEL_SANITIZE=thread and run `ctest -R Parallel` to race-check
// the fan-out.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordered_prime_scheme.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "labeling/subtree_partition.h"
#include "xml/datasets.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

/// Every label (and self-label) of every attached node, in preorder.
template <typename Scheme>
std::string LabelDump(const Scheme& scheme, const XmlTree& tree) {
  std::string dump;
  tree.Preorder([&](NodeId id, int) {
    dump += scheme.LabelString(id);
    dump += '\n';
  });
  return dump;
}

std::vector<XmlTree> Corpora() {
  std::vector<XmlTree> corpora;
  corpora.push_back(GenerateShakespeareCorpus(2));
  RandomTreeOptions wide;
  wide.node_count = 3000;
  wide.max_depth = 4;
  wide.max_fanout = 40;
  wide.seed = 7;
  corpora.push_back(GenerateRandomTree(wide));
  RandomTreeOptions deep;
  deep.node_count = 2000;
  deep.max_depth = 12;
  deep.max_fanout = 6;
  deep.seed = 11;
  corpora.push_back(GenerateRandomTree(deep));
  return corpora;
}

TEST(ParallelLabeling, PlanCoversTreeWithDisjointSubtrees) {
  XmlTree tree = GenerateShakespeareCorpus(2);
  SubtreePartition plan = PlanSubtreePartition(tree, 4);
  ASSERT_GE(plan.cut_depth, 1);
  ASSERT_EQ(plan.preorder.size(), tree.node_count());
  // Subtree intervals [pos, pos + size) of the roots must be disjoint, and
  // together with the spine cover the whole preorder exactly once.
  std::size_t covered = 0;
  std::size_t previous_end = 0;
  for (std::size_t pos : plan.roots) {
    ASSERT_GE(pos, previous_end);
    previous_end = pos + plan.size[pos];
    ASSERT_LE(previous_end, plan.preorder.size());
    covered += plan.size[pos];
  }
  std::size_t spine = 0;
  for (int d : plan.depth) {
    if (d < plan.cut_depth) ++spine;
  }
  EXPECT_EQ(spine + covered, tree.node_count());
}

TEST(ParallelLabeling, TopDownMatchesSequentialForEveryWorkerCount) {
  for (const XmlTree& tree : Corpora()) {
    PrimeTopDownScheme sequential;
    sequential.LabelTree(tree);
    std::string expected = LabelDump(sequential, tree);
    for (int workers : {1, 2, 8}) {
      PrimeTopDownScheme parallel;
      parallel.set_num_workers(workers);
      parallel.LabelTree(tree);
      EXPECT_EQ(LabelDump(parallel, tree), expected)
          << "workers=" << workers;
    }
  }
}

TEST(ParallelLabeling, OptimizedMatchesSequentialForEveryWorkerCount) {
  for (const XmlTree& tree : Corpora()) {
    PrimeOptimizedScheme sequential;
    sequential.LabelTree(tree);
    std::string expected = LabelDump(sequential, tree);
    for (int workers : {1, 2, 8}) {
      PrimeOptimizedScheme parallel;
      parallel.set_num_workers(workers);
      parallel.LabelTree(tree);
      EXPECT_EQ(LabelDump(parallel, tree), expected)
          << "workers=" << workers;
    }
  }
}

TEST(ParallelLabeling, OrderedSchemeMatchesSequentialIncludingScTable) {
  for (const XmlTree& tree : Corpora()) {
    OrderedPrimeScheme sequential;
    sequential.LabelTree(tree);
    std::string expected = LabelDump(sequential, tree);  // includes order=
    for (int workers : {2, 8}) {
      OrderedPrimeScheme parallel;
      parallel.set_num_workers(workers);
      parallel.LabelTree(tree);
      EXPECT_EQ(LabelDump(parallel, tree), expected)
          << "workers=" << workers;
      EXPECT_TRUE(parallel.sc_table().VerifyIntegrity());
      ASSERT_EQ(parallel.sc_table().records().size(),
                sequential.sc_table().records().size());
      for (std::size_t r = 0; r < parallel.sc_table().records().size(); ++r) {
        EXPECT_EQ(parallel.sc_table().records()[r].sc,
                  sequential.sc_table().records()[r].sc);
      }
    }
  }
}

TEST(ParallelLabeling, InsertionsAfterParallelLabelDrawTheSamePrimes) {
  // The cursor hand-off: after a parallel LabelTree the source must sit
  // exactly where the sequential run leaves it, or the first insertion
  // would diverge.
  XmlTree tree_a = GenerateShakespeareCorpus(1);
  XmlTree tree_b = GenerateShakespeareCorpus(1);
  PrimeOptimizedScheme sequential;
  PrimeOptimizedScheme parallel;
  parallel.set_num_workers(4);
  sequential.LabelTree(tree_a);
  parallel.LabelTree(tree_b);
  NodeId leaf_a = tree_a.AppendChild(tree_a.root(), "inserted");
  NodeId leaf_b = tree_b.AppendChild(tree_b.root(), "inserted");
  NodeId inner_a = tree_a.AppendChild(leaf_a, "nested");
  NodeId inner_b = tree_b.AppendChild(leaf_b, "nested");
  EXPECT_EQ(sequential.HandleInsert(leaf_a, InsertOrder::kUnordered),
            parallel.HandleInsert(leaf_b, InsertOrder::kUnordered));
  EXPECT_EQ(sequential.HandleInsert(inner_a, InsertOrder::kUnordered),
            parallel.HandleInsert(inner_b, InsertOrder::kUnordered));
  EXPECT_EQ(LabelDump(sequential, tree_a), LabelDump(parallel, tree_b));
}

}  // namespace
}  // namespace primelabel
