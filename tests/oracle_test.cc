// Shared StructureOracle contract suite: every test body runs unchanged
// against both implementations — the live OrderedPrimeScheme and a
// LoadedCatalog restored from disk. This is the point of the oracle
// interface: the query pipeline cannot tell a running labeler from a
// reloaded catalog, so neither may the contract.

#include "core/structure_oracle.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/labeled_document.h"
#include "store/catalog.h"
#include "util/rng.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

/// Builds one labeled play and exposes it through the oracle named by the
/// test parameter. `handle(i)` is the oracle's NodeId for the i-th node in
/// document order: the tree's node id for the live scheme, the row index
/// for the catalog (rows are written in preorder).
class OracleTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    PlayOptions options;
    options.acts = 3;
    options.scenes_per_act = 2;
    options.min_speeches_per_scene = 2;
    options.max_speeches_per_scene = 5;
    options.seed = 42;
    doc_.emplace(LabeledDocument::FromTree(GeneratePlay("t", options)));
    preorder_ = doc_->tree().PreorderNodes();

    if (GetParam() == "catalog") {
      // Unique per process: ctest runs each case in its own process, and
      // concurrent Save/Load/remove on one shared path race under -j.
      std::string path = std::string(::testing::TempDir()) +
                         "/oracle_suite_" + std::to_string(::getpid()) +
                         ".plc";
      ASSERT_TRUE(doc_->Save(path).ok());
      Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
      std::remove(path.c_str());
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      catalog_ = std::make_unique<LoadedCatalog>(std::move(loaded.value()));
      oracle_ = catalog_.get();
    } else {
      oracle_ = &doc_->scheme();
    }
  }

  NodeId handle(std::size_t rank) const {
    if (GetParam() == "catalog") return static_cast<NodeId>(rank);
    return preorder_[rank];
  }
  std::size_t node_count() const { return preorder_.size(); }
  const XmlTree& tree() const { return doc_->tree(); }

  std::optional<LabeledDocument> doc_;
  std::vector<NodeId> preorder_;
  std::unique_ptr<LoadedCatalog> catalog_;
  const StructureOracle* oracle_ = nullptr;
};

TEST_P(OracleTest, AncestorAndParentMatchTree) {
  for (std::size_t x = 0; x < node_count(); x += 5) {
    for (std::size_t y = 0; y < node_count(); y += 3) {
      EXPECT_EQ(oracle_->IsAncestor(handle(x), handle(y)),
                tree().IsAncestor(preorder_[x], preorder_[y]))
          << x << " " << y;
      EXPECT_EQ(oracle_->IsParent(handle(x), handle(y)),
                tree().parent(preorder_[y]) == preorder_[x])
          << x << " " << y;
    }
  }
}

TEST_P(OracleTest, OrderNumbersFollowDocumentOrder) {
  EXPECT_EQ(oracle_->OrderOf(handle(0)), 0u);  // the root
  for (std::size_t i = 1; i < node_count(); ++i) {
    EXPECT_LT(oracle_->OrderOf(handle(i - 1)), oracle_->OrderOf(handle(i)))
        << i;
  }
}

TEST_P(OracleTest, PrecedesAndFollowsDeriveFromOrderAndAncestry) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t x = rng.Below(node_count());
    std::size_t y = rng.Below(node_count());
    bool expected_precedes = x < y && !tree().IsAncestor(preorder_[x],
                                                         preorder_[y]);
    bool expected_follows = x > y && !tree().IsAncestor(preorder_[y],
                                                        preorder_[x]);
    EXPECT_EQ(oracle_->Precedes(handle(x), handle(y)), expected_precedes)
        << x << " " << y;
    EXPECT_EQ(oracle_->Follows(handle(x), handle(y)), expected_follows)
        << x << " " << y;
  }
}

TEST_P(OracleTest, IsAncestorBatchAgreesWithPairwise) {
  Rng rng(13);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 1000; ++i) {
    pairs.emplace_back(handle(rng.Below(node_count())),
                       handle(rng.Below(node_count())));
  }
  std::vector<std::uint8_t> results;
  oracle_->IsAncestorBatch(pairs, &results);
  ASSERT_EQ(results.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(results[i] != 0,
              oracle_->IsAncestor(pairs[i].first, pairs[i].second))
        << "pair " << i;
  }
}

TEST_P(OracleTest, SelectDescendantsAgreesWithPairwise) {
  Rng rng(29);
  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < node_count(); ++i) candidates.push_back(handle(i));
  for (int trial = 0; trial < 20; ++trial) {
    NodeId anchor = handle(rng.Below(node_count()));
    std::vector<NodeId> batched;
    oracle_->SelectDescendants(anchor, candidates, &batched);
    std::vector<NodeId> pairwise;
    for (NodeId candidate : candidates) {
      if (oracle_->IsAncestor(anchor, candidate)) pairwise.push_back(candidate);
    }
    EXPECT_EQ(batched, pairwise) << "anchor " << anchor;
  }
}

TEST_P(OracleTest, SelectAncestorsAgreesWithPairwise) {
  Rng rng(31);
  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < node_count(); ++i) candidates.push_back(handle(i));
  for (int trial = 0; trial < 20; ++trial) {
    NodeId descendant = handle(rng.Below(node_count()));
    std::vector<NodeId> batched;
    oracle_->SelectAncestors(descendant, candidates, &batched);
    std::vector<NodeId> pairwise;
    for (NodeId candidate : candidates) {
      if (oracle_->IsAncestor(candidate, descendant)) {
        pairwise.push_back(candidate);
      }
    }
    EXPECT_EQ(batched, pairwise) << "descendant " << descendant;
  }
}

/// Forwards only the three pure-virtual scalar queries to a wrapped
/// oracle, hiding every batch/axis override — so running the contract
/// through it exercises the StructureOracle BASE-CLASS defaults
/// (IsAncestorBatch/SelectDescendants/SelectAncestors loops and the
/// order-and-ancestry Precedes/Follows) against both backends.
class ScalarOnlyOracle : public StructureOracle {
 public:
  explicit ScalarOnlyOracle(const StructureOracle* inner) : inner_(inner) {}
  bool IsAncestor(NodeId x, NodeId y) const override {
    return inner_->IsAncestor(x, y);
  }
  bool IsParent(NodeId x, NodeId y) const override {
    return inner_->IsParent(x, y);
  }
  std::uint64_t OrderOf(NodeId id) const override {
    return inner_->OrderOf(id);
  }

 private:
  const StructureOracle* inner_;
};

TEST_P(OracleTest, DefaultBatchPathsAgreeWithOverrides) {
  ScalarOnlyOracle defaults(oracle_);

  Rng rng(37);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(handle(rng.Below(node_count())),
                       handle(rng.Below(node_count())));
  }
  std::vector<std::uint8_t> from_default, from_override;
  defaults.IsAncestorBatch(pairs, &from_default);
  oracle_->IsAncestorBatch(pairs, &from_override);
  ASSERT_EQ(from_default.size(), from_override.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(from_default[i] != 0, from_override[i] != 0) << "pair " << i;
  }

  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < node_count(); ++i) candidates.push_back(handle(i));
  for (int trial = 0; trial < 10; ++trial) {
    NodeId anchor = handle(rng.Below(node_count()));
    std::vector<NodeId> down_default, down_override;
    defaults.SelectDescendants(anchor, candidates, &down_default);
    oracle_->SelectDescendants(anchor, candidates, &down_override);
    EXPECT_EQ(down_default, down_override) << "anchor " << anchor;

    std::vector<NodeId> up_default, up_override;
    defaults.SelectAncestors(anchor, candidates, &up_default);
    oracle_->SelectAncestors(anchor, candidates, &up_override);
    EXPECT_EQ(up_default, up_override) << "anchor " << anchor;
  }
}

TEST_P(OracleTest, DefaultPrecedesFollowsAgreeWithOverrides) {
  ScalarOnlyOracle defaults(oracle_);
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    NodeId x = handle(rng.Below(node_count()));
    NodeId y = handle(rng.Below(node_count()));
    EXPECT_EQ(defaults.Precedes(x, y), oracle_->Precedes(x, y))
        << x << " " << y;
    EXPECT_EQ(defaults.Follows(x, y), oracle_->Follows(x, y))
        << x << " " << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Oracles, OracleTest,
                         ::testing::Values("scheme", "catalog"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace primelabel
