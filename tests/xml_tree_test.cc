#include "xml/tree.h"

#include <gtest/gtest.h>

#include "xml/stats.h"

namespace primelabel {
namespace {

// Builds the running example: book with title and three authors.
XmlTree BookTree(NodeId* book, NodeId* title, NodeId authors[3]) {
  XmlTree tree;
  *book = tree.CreateRoot("book");
  *title = tree.AppendChild(*book, "title");
  for (int i = 0; i < 3; ++i) authors[i] = tree.AppendChild(*book, "author");
  return tree;
}

TEST(XmlTree, CreateRootAndChildren) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("root");
  EXPECT_EQ(tree.root(), root);
  EXPECT_EQ(tree.node_count(), 1u);
  NodeId a = tree.AppendChild(root, "a");
  NodeId b = tree.AppendChild(root, "b");
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.Children(root), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(tree.parent(a), root);
  EXPECT_EQ(tree.name(b), "b");
}

TEST(XmlTree, TextNodes) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("p");
  NodeId text = tree.AppendText(root, "hello");
  EXPECT_EQ(tree.type(text), XmlNodeType::kText);
  EXPECT_FALSE(tree.IsElement(text));
  EXPECT_EQ(tree.name(text), "hello");
}

TEST(XmlTree, InsertBeforeKeepsOrder) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId inserted = tree.InsertBefore(authors[1], "author");
  EXPECT_EQ(tree.Children(book),
            (std::vector<NodeId>{title, authors[0], inserted, authors[1],
                                 authors[2]}));
  EXPECT_EQ(tree.SiblingPosition(inserted), 3);
}

TEST(XmlTree, InsertBeforeFirstChildUpdatesParentLink) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId first = tree.InsertBefore(title, "isbn");
  EXPECT_EQ(tree.first_child(book), first);
  EXPECT_EQ(tree.SiblingPosition(first), 1);
}

TEST(XmlTree, InsertAfterKeepsOrder) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId inserted = tree.InsertAfter(authors[2], "year");
  EXPECT_EQ(tree.Children(book).back(), inserted);
  NodeId mid = tree.InsertAfter(authors[0], "affiliation");
  EXPECT_EQ(tree.SiblingPosition(mid), 3);
}

TEST(XmlTree, WrapNodeRewiresStructure) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId wrapper = tree.WrapNode(authors[1], "editors");
  EXPECT_EQ(tree.parent(wrapper), book);
  EXPECT_EQ(tree.parent(authors[1]), wrapper);
  EXPECT_EQ(tree.Children(wrapper), (std::vector<NodeId>{authors[1]}));
  EXPECT_EQ(tree.Children(book),
            (std::vector<NodeId>{title, authors[0], wrapper, authors[2]}));
  EXPECT_EQ(tree.Depth(authors[1]), 2);
}

TEST(XmlTree, WrapFirstAndLastChild) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId w1 = tree.WrapNode(title, "meta");
  EXPECT_EQ(tree.first_child(book), w1);
  NodeId w2 = tree.WrapNode(authors[2], "tail");
  EXPECT_EQ(tree.Children(book).back(), w2);
}

TEST(XmlTree, DetachRemovesSubtreeFromTraversal) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  NodeId nested = tree.AppendChild(authors[1], "name");
  EXPECT_EQ(tree.node_count(), 6u);
  tree.Detach(authors[1]);
  EXPECT_EQ(tree.node_count(), 4u);
  EXPECT_TRUE(tree.IsDetached(authors[1]));
  EXPECT_TRUE(tree.IsDetached(nested));
  for (NodeId id : tree.PreorderNodes()) {
    EXPECT_NE(id, authors[1]);
    EXPECT_NE(id, nested);
  }
  EXPECT_EQ(tree.Children(book),
            (std::vector<NodeId>{title, authors[0], authors[2]}));
}

TEST(XmlTree, DepthAndAncestor) {
  XmlTree tree;
  NodeId a = tree.CreateRoot("a");
  NodeId b = tree.AppendChild(a, "b");
  NodeId c = tree.AppendChild(b, "c");
  NodeId d = tree.AppendChild(a, "d");
  EXPECT_EQ(tree.Depth(a), 0);
  EXPECT_EQ(tree.Depth(c), 2);
  EXPECT_TRUE(tree.IsAncestor(a, c));
  EXPECT_TRUE(tree.IsAncestor(b, c));
  EXPECT_FALSE(tree.IsAncestor(c, b));
  EXPECT_FALSE(tree.IsAncestor(d, c));
  EXPECT_FALSE(tree.IsAncestor(c, c));
}

TEST(XmlTree, PreorderVisitsDocumentOrder) {
  XmlTree tree;
  NodeId r = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(r, "a");
  NodeId a1 = tree.AppendChild(a, "a1");
  NodeId a2 = tree.AppendChild(a, "a2");
  NodeId b = tree.AppendChild(r, "b");
  EXPECT_EQ(tree.PreorderNodes(), (std::vector<NodeId>{r, a, a1, a2, b}));
}

TEST(XmlTree, FindFirstAndFindAll) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  EXPECT_EQ(tree.FindFirst("author"), authors[0]);
  EXPECT_EQ(tree.FindFirst("missing"), kInvalidNodeId);
  EXPECT_EQ(tree.FindAll("author"),
            (std::vector<NodeId>{authors[0], authors[1], authors[2]}));
}

TEST(XmlTree, Attributes) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("e");
  tree.AddAttribute(root, "id", "42");
  tree.AddAttribute(root, "lang", "en");
  ASSERT_EQ(tree.node(root).attributes.size(), 2u);
  EXPECT_EQ(tree.node(root).attributes[0].first, "id");
  EXPECT_EQ(tree.node(root).attributes[1].second, "en");
}

TEST(XmlTree, CopyIsIndependent) {
  NodeId book, title, authors[3];
  XmlTree tree = BookTree(&book, &title, authors);
  XmlTree copy = tree;
  copy.AppendChild(copy.root(), "extra");
  EXPECT_EQ(tree.node_count(), 5u);
  EXPECT_EQ(copy.node_count(), 6u);
}

TEST(TreeStats, MatchesHandComputedValues) {
  XmlTree tree;
  NodeId r = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(r, "a");
  tree.AppendChild(r, "b");
  tree.AppendChild(r, "c");
  NodeId a1 = tree.AppendChild(a, "a1");
  tree.AppendChild(a1, "a11");
  TreeStats stats = ComputeStats(tree);
  EXPECT_EQ(stats.node_count, 6u);
  EXPECT_EQ(stats.element_count, 6u);
  EXPECT_EQ(stats.leaf_count, 3u);
  EXPECT_EQ(stats.max_depth, 3);
  EXPECT_EQ(stats.max_fanout, 3);
  // Internal nodes: r (3 children), a (1), a1 (1) -> avg 5/3.
  EXPECT_NEAR(stats.avg_fanout, 5.0 / 3.0, 1e-9);
}

TEST(TreeStats, SingleNode) {
  XmlTree tree;
  tree.CreateRoot("only");
  TreeStats stats = ComputeStats(tree);
  EXPECT_EQ(stats.node_count, 1u);
  EXPECT_EQ(stats.leaf_count, 1u);
  EXPECT_EQ(stats.max_depth, 0);
  EXPECT_EQ(stats.max_fanout, 0);
  EXPECT_EQ(stats.avg_fanout, 0.0);
}

}  // namespace
}  // namespace primelabel
