#include "corpus/document_store.h"

#include <gtest/gtest.h>

#include "labeling/prime_top_down.h"
#include "xml/parser.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

XmlTree SmallPlay(std::uint64_t seed) {
  PlayOptions options;
  options.acts = 3;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 4;
  options.personae = 3;
  options.seed = seed;
  return GeneratePlay("p", options);
}

TEST(DocumentStore, AddAndInspect) {
  DocumentStore store;
  auto d1 = store.AddDocument("hamlet", SmallPlay(1));
  auto d2 = store.AddDocument("macbeth", SmallPlay(2));
  EXPECT_EQ(store.document_count(), 2u);
  EXPECT_EQ(store.document_name(d1), "hamlet");
  EXPECT_EQ(store.document_name(d2), "macbeth");
  EXPECT_GT(store.total_nodes(), 100u);
  EXPECT_GT(store.MaxLabelBits(), 0);
}

TEST(DocumentStore, QueriesRunPerDocumentAndUnion) {
  DocumentStore store;
  for (int i = 0; i < 4; ++i) {
    store.AddDocument("play-" + std::to_string(i), SmallPlay(
        static_cast<std::uint64_t>(i) + 10));
  }
  Result<DocumentStore::QueryResult> acts = store.Query("/play//act");
  ASSERT_TRUE(acts.ok());
  EXPECT_EQ(acts->hits.size(), 12u);  // 3 acts x 4 documents
  // Positional predicates stay per document.
  Result<DocumentStore::QueryResult> second = store.Query("/play//act[2]");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->hits.size(), 4u);
  // The Following axis never crosses documents: following act 2 there is
  // exactly one act per play.
  Result<DocumentStore::QueryResult> following =
      store.Query("/play//act[2]//Following::act");
  ASSERT_TRUE(following.ok());
  EXPECT_EQ(following->hits.size(), 4u);
}

TEST(DocumentStore, HitsAreInDocumentThenDocumentOrder) {
  DocumentStore store;
  store.AddDocument("a", SmallPlay(5));
  store.AddDocument("b", SmallPlay(6));
  Result<DocumentStore::QueryResult> scenes = store.Query("/play//scene");
  ASSERT_TRUE(scenes.ok());
  for (std::size_t i = 0; i + 1 < scenes->hits.size(); ++i) {
    const auto& x = scenes->hits[i];
    const auto& y = scenes->hits[i + 1];
    ASSERT_TRUE(x.doc < y.doc ||
                (x.doc == y.doc &&
                 store.scheme(x.doc).OrderOf(x.node) <
                     store.scheme(y.doc).OrderOf(y.node)));
  }
}

TEST(DocumentStore, PerDocumentLabelsStaySmall) {
  // The same content as one concatenated document produces much larger
  // prime labels than per-document labeling — the reason the paper stores
  // files separately.
  DocumentStore store;
  XmlTree merged;
  NodeId root = merged.CreateRoot("plays");
  for (int i = 0; i < 8; ++i) {
    XmlTree play = SmallPlay(static_cast<std::uint64_t>(i) + 30);
    store.AddDocument("p" + std::to_string(i), play);
    // Copy into the merged corpus.
    std::vector<NodeId> mapping(play.arena_size(), kInvalidNodeId);
    play.Preorder([&](NodeId id, int depth) {
      NodeId parent = depth == 0
                          ? root
                          : mapping[static_cast<std::size_t>(play.parent(id))];
      mapping[static_cast<std::size_t>(id)] =
          merged.AppendChild(parent, play.name(id));
    });
  }
  PrimeTopDownScheme merged_scheme;
  merged_scheme.LabelTree(merged);
  EXPECT_LT(store.MaxLabelBits(), merged_scheme.MaxLabelBits());
}

TEST(DocumentStore, BadQueryReportsParseError) {
  DocumentStore store;
  store.AddDocument("p", SmallPlay(7));
  Result<DocumentStore::QueryResult> result = store.Query("not-xpath");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(DocumentStore, StatsAccumulateAcrossDocuments) {
  DocumentStore store;
  store.AddDocument("a", SmallPlay(8));
  store.AddDocument("b", SmallPlay(9));
  Result<DocumentStore::QueryResult> result =
      store.Query("/play//act//speech");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.rows_scanned, 0u);
  EXPECT_GT(result->stats.label_tests, 0u);
}

}  // namespace
}  // namespace primelabel
