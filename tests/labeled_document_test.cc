#include "corpus/labeled_document.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "store/catalog.h"

namespace primelabel {
namespace {

constexpr char kBib[] =
    "<bib>"
    "<book><title>A</title><author>X</author><author>Y</author></book>"
    "<book><title>B</title><author>Z</author></book>"
    "</bib>";

TEST(LabeledDocument, FromXmlAndQuery) {
  Result<LabeledDocument> doc = LabeledDocument::FromXml(kBib);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Result<std::vector<NodeId>> authors = doc->Query("//author");
  ASSERT_TRUE(authors.ok());
  EXPECT_EQ(authors->size(), 3u);
  Result<std::vector<NodeId>> second = doc->Query("//book[2]/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 1u);
}

TEST(LabeledDocument, RejectsBadXmlAndBadQueries) {
  EXPECT_FALSE(LabeledDocument::FromXml("<broken").ok());
  Result<LabeledDocument> doc = LabeledDocument::FromXml(kBib);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->Query("???").ok());
}

TEST(LabeledDocument, InsertUpdatesAnswersAndReportsCost) {
  Result<LabeledDocument> parsed = LabeledDocument::FromXml(kBib);
  ASSERT_TRUE(parsed.ok());
  LabeledDocument doc = std::move(parsed.value());
  std::vector<NodeId> authors = doc.Query("//author").value();
  ASSERT_EQ(authors.size(), 3u);
  // New second author of the first book.
  NodeId fresh = doc.InsertBefore(authors[1], "author");
  EXPECT_GE(doc.last_update_cost(), 2);  // node + >=1 SC record
  std::vector<NodeId> after = doc.Query("//author").value();
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after[1], fresh);  // document order includes the new node
  // Positional query sees the shift.
  std::vector<NodeId> second = doc.Query("//book[1]/author[2]").value();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], fresh);
}

TEST(LabeledDocument, AppendWrapAndDelete) {
  LabeledDocument doc = LabeledDocument::FromTree([] {
    XmlTree tree;
    NodeId root = tree.CreateRoot("r");
    tree.AppendChild(root, "a");
    tree.AppendChild(root, "b");
    return tree;
  }());
  NodeId a = doc.Query("//a").value()[0];
  NodeId child = doc.AppendChild(a, "c");
  EXPECT_EQ(doc.Query("//a/c").value().size(), 1u);
  NodeId wrapper = doc.Wrap(child, "w");
  EXPECT_EQ(doc.Query("//a/w/c").value().size(), 1u);
  EXPECT_GT(doc.last_update_cost(), 0);
  doc.Delete(wrapper);
  EXPECT_TRUE(doc.Query("//c").value().empty());
  EXPECT_EQ(doc.Query("//b").value().size(), 1u);
}

TEST(LabeledDocument, SaveProducesLoadableCatalog) {
  Result<LabeledDocument> doc = LabeledDocument::FromXml(kBib);
  ASSERT_TRUE(doc.ok());
  std::string path = std::string(::testing::TempDir()) + "/facade.plc";
  ASSERT_TRUE(doc->Save(path).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows().size(), doc->tree().node_count());
  std::remove(path.c_str());
}

TEST(LabeledDocument, ManyUpdatesStayConsistent) {
  LabeledDocument doc = LabeledDocument::FromTree([] {
    XmlTree tree;
    NodeId root = tree.CreateRoot("list");
    tree.AppendChild(root, "item");
    return tree;
  }());
  // Interleave prepends and appends; positional queries must stay exact.
  for (int i = 0; i < 30; ++i) {
    std::vector<NodeId> items = doc.Query("//item").value();
    if (i % 2 == 0) {
      doc.InsertBefore(items.front(), "item");
    } else {
      doc.InsertAfter(items.back(), "item");
    }
  }
  std::vector<NodeId> items = doc.Query("//item").value();
  ASSERT_EQ(items.size(), 31u);
  // Document order from the SC table matches tree order.
  std::vector<NodeId> expected = doc.tree().FindAll("item");
  EXPECT_EQ(items, expected);
}

}  // namespace
}  // namespace primelabel
