#include "core/decomposed_prime_scheme.h"

#include <gtest/gtest.h>

#include "labeling/prime_top_down.h"
#include "util/rng.h"
#include "xml/datasets.h"

namespace primelabel {
namespace {

XmlTree ChainTree(int depth) {
  XmlTree tree;
  NodeId node = tree.CreateRoot("n");
  for (int d = 0; d < depth; ++d) node = tree.AppendChild(node, "n");
  return tree;
}

TEST(DecomposedPrime, CutsEveryKLevels) {
  XmlTree tree = ChainTree(10);
  DecomposedPrimeScheme scheme(/*component_depth=*/4);
  scheme.LabelTree(tree);
  // Depths 0..10 with cuts at 4 and 8: components rooted at depths 0, 4, 8.
  EXPECT_EQ(scheme.component_count(), 3u);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  EXPECT_EQ(scheme.component_of(nodes[0]), 0);
  EXPECT_EQ(scheme.component_of(nodes[3]), 0);
  EXPECT_EQ(scheme.component_of(nodes[4]), 1);
  EXPECT_EQ(scheme.component_of(nodes[7]), 1);
  EXPECT_EQ(scheme.component_of(nodes[8]), 2);
  EXPECT_EQ(scheme.component_of(nodes[10]), 2);
}

TEST(DecomposedPrime, AncestryWithinAndAcrossComponents) {
  XmlTree tree = ChainTree(10);
  DecomposedPrimeScheme scheme(/*component_depth=*/3);
  scheme.LabelTree(tree);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      EXPECT_EQ(scheme.IsAncestor(nodes[i], nodes[j]), i < j)
          << i << " " << j;
      EXPECT_EQ(scheme.IsParent(nodes[i], nodes[j]), i + 1 == j)
          << i << " " << j;
    }
  }
}

TEST(DecomposedPrime, MatchesGroundTruthOnRandomTrees) {
  for (int component_depth : {1, 2, 3, 5}) {
    RandomTreeOptions options;
    options.node_count = 200;
    options.max_depth = 9;
    options.max_fanout = 4;
    options.seed = static_cast<std::uint64_t>(component_depth) * 11;
    XmlTree tree = GenerateRandomTree(options);
    DecomposedPrimeScheme scheme(component_depth);
    scheme.LabelTree(tree);
    std::vector<NodeId> nodes = tree.PreorderNodes();
    for (NodeId x : nodes) {
      for (NodeId y : nodes) {
        ASSERT_EQ(scheme.IsAncestor(x, y), tree.IsAncestor(x, y))
            << "k=" << component_depth << " x=" << x << " y=" << y;
        ASSERT_EQ(scheme.IsParent(x, y), tree.parent(y) == x)
            << "k=" << component_depth << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(DecomposedPrime, SurvivesRandomInsertsIncludingWraps) {
  RandomTreeOptions options;
  options.node_count = 80;
  options.max_depth = 8;
  options.max_fanout = 5;
  options.seed = 77;
  XmlTree tree = GenerateRandomTree(options);
  DecomposedPrimeScheme scheme(/*component_depth=*/3);
  scheme.LabelTree(tree);
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    std::vector<NodeId> nodes = tree.PreorderNodes();
    NodeId target = nodes[rng.Below(nodes.size())];
    NodeId fresh;
    if (target == tree.root() || rng.Chance(50)) {
      fresh = tree.AppendChild(target, "ins");
    } else if (rng.Chance(50)) {
      fresh = tree.InsertAfter(target, "ins");
    } else {
      fresh = tree.WrapNode(target, "ins");
    }
    EXPECT_GE(scheme.HandleInsert(fresh, InsertOrder::kUnordered), 1);
  }
  std::vector<NodeId> nodes = tree.PreorderNodes();
  for (NodeId x : nodes) {
    for (NodeId y : nodes) {
      ASSERT_EQ(scheme.IsAncestor(x, y), tree.IsAncestor(x, y));
      ASSERT_EQ(scheme.IsParent(x, y), tree.parent(y) == x);
    }
  }
}

TEST(DecomposedPrime, LeafInsertTouchesOneNode) {
  XmlTree tree = ChainTree(6);
  DecomposedPrimeScheme scheme(/*component_depth=*/3);
  scheme.LabelTree(tree);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  NodeId fresh = tree.AppendChild(nodes[5], "leaf");
  EXPECT_EQ(scheme.HandleInsert(fresh, InsertOrder::kUnordered), 1);
  EXPECT_TRUE(scheme.IsParent(nodes[5], fresh));
  EXPECT_TRUE(scheme.IsAncestor(nodes[0], fresh));
}

TEST(DecomposedPrime, ShrinksLabelsOnDeepTrees) {
  // The paper's motivation: "this tree decomposition approach can
  // effectively reduce the label size of dynamic labeling schemes for
  // trees with great depths". Compare against undecomposed top-down on
  // the deep NASA-style dataset.
  XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[6]);  // D7
  PrimeTopDownScheme flat;
  flat.LabelTree(tree);
  DecomposedPrimeScheme decomposed(/*component_depth=*/3);
  decomposed.LabelTree(tree);
  EXPECT_LT(decomposed.MaxLabelBits(), flat.MaxLabelBits() / 2);
}

TEST(DecomposedPrime, DepthOneDegeneratesToPerLevelComponents) {
  XmlTree tree = ChainTree(5);
  DecomposedPrimeScheme scheme(/*component_depth=*/1);
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.component_count(), 6u);  // one per level on a chain
  std::vector<NodeId> nodes = tree.PreorderNodes();
  EXPECT_TRUE(scheme.IsAncestor(nodes[0], nodes[5]));
  EXPECT_FALSE(scheme.IsAncestor(nodes[5], nodes[0]));
}

}  // namespace
}  // namespace primelabel
