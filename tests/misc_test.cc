// Coverage for the support types: Status/Result semantics, EvalStats
// accumulation, TreeStats rendering, axis names, and LabelString smoke
// tests across every scheme (human-facing output should never crash or be
// empty).

#include <memory>

#include <gtest/gtest.h>

#include "core/decomposed_prime_scheme.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/dewey.h"
#include "labeling/float_interval.h"
#include "labeling/gapped_interval.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_bottom_up.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "store/plan.h"
#include "util/status.h"
#include "xml/stats.h"
#include "xpath/ast.h"
#include "xpath/sql_translate.h"

namespace primelabel {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_TRUE(Status().ok());
  Status s = Status::ParseError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "ParseError: bad input");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
}

TEST(Status, CodeNamesCoverEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kParseError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultType, ValueAndErrorPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);

  // A Result built from an OK status is a programming error surfaced as
  // kInternal rather than a silent empty value.
  Result<int> weird{Status::Ok()};
  EXPECT_FALSE(weird.ok());
  EXPECT_EQ(weird.status().code(), StatusCode::kInternal);
}

TEST(ResultType, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(EvalStatsType, Accumulates) {
  EvalStats a{10, 20, 30};
  EvalStats b{1, 2, 3};
  a += b;
  EXPECT_EQ(a.rows_scanned, 11u);
  EXPECT_EQ(a.label_tests, 22u);
  EXPECT_EQ(a.order_lookups, 33u);
}

TEST(TreeStatsType, ToStringMentionsEveryField) {
  TreeStats stats;
  stats.node_count = 7;
  stats.max_depth = 3;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("nodes=7"), std::string::npos);
  EXPECT_NE(text.find("depth=3"), std::string::npos);
  EXPECT_NE(text.find("fanout"), std::string::npos);
}

TEST(XPathAxisNames, AllDistinct) {
  std::vector<std::string> names;
  for (XPathAxis axis :
       {XPathAxis::kChild, XPathAxis::kDescendant, XPathAxis::kFollowing,
        XPathAxis::kPreceding, XPathAxis::kFollowingSibling,
        XPathAxis::kPrecedingSibling, XPathAxis::kParent,
        XPathAxis::kAncestor}) {
    names.push_back(XPathAxisName(axis));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(SqlTranslateText, TextPredicateBecomesColumnEquality) {
  Result<std::string> sql =
      TranslateToSql("//author[text()='John']", SqlScheme::kInterval);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("n0.text = 'John'"), std::string::npos);
}

TEST(LabelStrings, EverySchemeRendersNonEmptyLabels) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  NodeId leaf = tree.AppendChild(a, "leaf");

  std::vector<std::unique_ptr<LabelingScheme>> schemes;
  schemes.push_back(std::make_unique<IntervalScheme>());
  schemes.push_back(
      std::make_unique<IntervalScheme>(IntervalVariant::kOrderSize));
  schemes.push_back(std::make_unique<GappedIntervalScheme>());
  schemes.push_back(std::make_unique<FloatIntervalScheme>());
  schemes.push_back(std::make_unique<PrefixScheme>(PrefixVariant::kUnary));
  schemes.push_back(std::make_unique<PrefixScheme>(PrefixVariant::kBinary));
  schemes.push_back(std::make_unique<DeweyScheme>());
  schemes.push_back(std::make_unique<PrimeTopDownScheme>());
  schemes.push_back(std::make_unique<PrimeBottomUpScheme>());
  schemes.push_back(std::make_unique<PrimeOptimizedScheme>());
  schemes.push_back(std::make_unique<OrderedPrimeScheme>());
  schemes.push_back(std::make_unique<DecomposedPrimeScheme>(2));

  std::vector<std::string> names;
  for (auto& scheme : schemes) {
    scheme->LabelTree(tree);
    names.emplace_back(scheme->name());
    for (NodeId id : {root, a, leaf}) {
      EXPECT_FALSE(scheme->LabelString(id).empty())
          << scheme->name() << " node " << id;
      EXPECT_GE(scheme->LabelBits(id), 0) << scheme->name();
    }
    EXPECT_FALSE(scheme->name().empty());
    // Deleting never relabels in any scheme (default HandleDelete).
    tree.Detach(leaf);
    EXPECT_EQ(scheme->HandleDelete(leaf), 0) << scheme->name();
    // Restore for the next scheme (fresh leaf).
    leaf = tree.AppendChild(a, "leaf");
    scheme->LabelTree(tree);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "scheme names must be distinct";
}

}  // namespace
}  // namespace primelabel
