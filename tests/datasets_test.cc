#include "xml/datasets.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"
#include "xml/shakespeare.h"
#include "xml/stats.h"

namespace primelabel {
namespace {

TEST(NiagaraCorpus, HasNineDatasetsWithTable1Counts) {
  std::vector<DatasetSpec> specs = NiagaraCorpusSpecs();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs[0].id, "D1");
  EXPECT_EQ(specs[0].target_nodes, 41u);
  EXPECT_EQ(specs[3].topic, "Actor");
  EXPECT_EQ(specs[3].target_nodes, 1110u);
  EXPECT_EQ(specs[6].topic, "NASA");
  EXPECT_EQ(specs[6].target_nodes, 4834u);
  EXPECT_EQ(specs[8].target_nodes, 10052u);
}

TEST(NiagaraCorpus, GeneratedSizesLandOnTargets) {
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    XmlTree tree = GenerateDataset(spec);
    TreeStats stats = ComputeStats(tree);
    // Shakespeare (D8) is structure-driven; others land exactly or within
    // one record of the target.
    if (spec.style == DatasetStyle::kShakespeare) {
      EXPECT_NEAR(static_cast<double>(stats.node_count),
                  static_cast<double>(spec.target_nodes),
                  0.12 * static_cast<double>(spec.target_nodes))
          << spec.id;
    } else {
      EXPECT_EQ(stats.node_count, spec.target_nodes) << spec.id;
    }
  }
}

TEST(NiagaraCorpus, GenerationIsDeterministic) {
  DatasetSpec spec = NiagaraCorpusSpecs()[6];  // NASA uses the RNG
  XmlTree a = GenerateDataset(spec);
  XmlTree b = GenerateDataset(spec);
  EXPECT_EQ(SerializeXml(a), SerializeXml(b));
}

TEST(NiagaraCorpus, ActorDatasetHasHugeFanout) {
  XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[3]);  // D4
  TreeStats stats = ComputeStats(tree);
  EXPECT_GT(stats.max_fanout, 300);  // "a list of movies for an actor"
  EXPECT_LE(stats.max_depth, 4);
}

TEST(NiagaraCorpus, NasaDatasetIsDeepAndNarrow) {
  XmlTree tree = GenerateDataset(NiagaraCorpusSpecs()[6]);  // D7
  TreeStats stats = ComputeStats(tree);
  EXPECT_GE(stats.max_depth, 8);  // "high depth with low fan-out"
  EXPECT_LT(stats.avg_fanout, 3.0);
}

TEST(RandomTree, ExactNodeCountAndBounds) {
  for (std::size_t n : {1u, 2u, 100u, 1000u, 5000u}) {
    RandomTreeOptions options;
    options.node_count = n;
    options.max_depth = 6;
    options.max_fanout = 10;
    options.seed = n;
    XmlTree tree = GenerateRandomTree(options);
    TreeStats stats = ComputeStats(tree);
    EXPECT_EQ(stats.node_count, n);
    EXPECT_LE(stats.max_depth, 6);
    EXPECT_LE(stats.max_fanout, 10);
  }
}

TEST(RandomTree, SeedsChangeShape) {
  RandomTreeOptions a{500, 6, 10, 1};
  RandomTreeOptions b{500, 6, 10, 2};
  EXPECT_NE(SerializeXml(GenerateRandomTree(a)),
            SerializeXml(GenerateRandomTree(b)));
}

TEST(Shakespeare, PlayHasCanonicalStructure) {
  PlayOptions options;
  options.seed = 3;
  XmlTree play = GeneratePlay("Test", options);
  EXPECT_EQ(play.name(play.root()), "play");
  EXPECT_EQ(play.FindAll("act").size(), 5u);
  EXPECT_EQ(play.FindAll("scene").size(), 20u);
  EXPECT_EQ(play.FindAll("personae").size(), 1u);
  EXPECT_EQ(play.FindAll("persona").size(), 26u);
  // Every speech has a speaker and at least one line.
  for (NodeId speech : play.FindAll("speech")) {
    std::vector<NodeId> children = play.Children(speech);
    ASSERT_GE(children.size(), 2u);
    EXPECT_EQ(play.name(children[0]), "speaker");
  }
}

TEST(Shakespeare, HamletLandsNearTable1Count) {
  XmlTree hamlet = GenerateHamlet();
  TreeStats stats = ComputeStats(hamlet);
  // Table 1 lists 6,636 nodes for the largest play.
  EXPECT_GT(stats.node_count, 5500u);
  EXPECT_LT(stats.node_count, 7800u);
  EXPECT_EQ(stats.max_depth, 4);  // play/act/scene/speech/line
}

TEST(Shakespeare, CorpusReplicatesPlays) {
  XmlTree corpus = GenerateShakespeareCorpus(3);
  EXPECT_EQ(corpus.name(corpus.root()), "plays");
  EXPECT_EQ(corpus.FindAll("play").size(), 3u);
  EXPECT_EQ(corpus.FindAll("act").size(), 15u);
}

TEST(Shakespeare, GenerationIsDeterministic) {
  EXPECT_EQ(SerializeXml(GenerateHamlet()), SerializeXml(GenerateHamlet()));
}

}  // namespace
}  // namespace primelabel
