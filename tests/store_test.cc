#include <memory>

#include <gtest/gtest.h>

#include "core/ordered_prime_scheme.h"
#include "labeling/interval.h"
#include "store/label_table.h"
#include "store/plan.h"
#include "xml/datasets.h"
#include "xml/parser.h"

namespace primelabel {
namespace {

// <r><a><b/><c/></a><a><b/></a><d/></r>
Result<XmlTree> TestDoc() {
  return ParseXml("<r><a><b/><c/></a><a><b/></a><d/></r>");
}

TEST(LabelTable, RowsAreInDocumentOrderByTag) {
  Result<XmlTree> doc = TestDoc();
  ASSERT_TRUE(doc.ok());
  LabelTable table(*doc);
  EXPECT_EQ(table.row_count(), 7u);
  EXPECT_EQ(table.Rows("a").size(), 2u);
  EXPECT_EQ(table.Rows("b").size(), 2u);
  EXPECT_EQ(table.Rows("zzz").size(), 0u);
  // Document order: first 'a' row precedes second.
  EXPECT_LT(table.Rows("a")[0], table.Rows("a")[1]);
}

TEST(LabelTable, ParentColumnMatchesTree) {
  Result<XmlTree> doc = TestDoc();
  ASSERT_TRUE(doc.ok());
  LabelTable table(*doc);
  for (NodeId row : table.AllRows()) {
    EXPECT_EQ(table.ParentOf(row), doc->parent(row));
  }
}

TEST(LabelTable, TextNodesAreNotRows) {
  Result<XmlTree> doc = ParseXml("<r><a>text</a></r>");
  ASSERT_TRUE(doc.ok());
  LabelTable table(*doc);
  EXPECT_EQ(table.row_count(), 2u);  // r and a only
}

TEST(LabelTable, TagsEnumeratesDistinctTags) {
  Result<XmlTree> doc = TestDoc();
  ASSERT_TRUE(doc.ok());
  LabelTable table(*doc);
  std::vector<std::string> tags = table.Tags();
  EXPECT_EQ(tags.size(), 5u);  // r, a, b, c, d
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<XmlTree> doc = TestDoc();
    ASSERT_TRUE(doc.ok());
    tree_ = std::make_unique<XmlTree>(std::move(doc.value()));
    table_ = std::make_unique<LabelTable>(*tree_);
    scheme_.LabelTree(*tree_);
    oracle_ = std::make_unique<SchemeOracle>(
        &scheme_, [this](NodeId id) { return scheme_.low(id); });
    ctx_.table = table_.get();
    ctx_.oracle = oracle_.get();
  }

  std::unique_ptr<XmlTree> tree_;
  std::unique_ptr<LabelTable> table_;
  IntervalScheme scheme_;
  std::unique_ptr<SchemeOracle> oracle_;
  QueryContext ctx_;
};

TEST_F(PlanTest, JoinDescendantsFindsAllUnderContext) {
  std::vector<NodeId> as = table_->Rows("a");
  std::vector<NodeId> bs = table_->Rows("b");
  std::vector<NodeId> result = JoinDescendants(ctx_, as, bs);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_GT(ctx_.stats.label_tests, 0u);
  EXPECT_EQ(ctx_.stats.rows_scanned, bs.size());
}

TEST_F(PlanTest, JoinChildrenRespectsDirectParentage) {
  std::vector<NodeId> root = table_->Rows("r");
  EXPECT_EQ(JoinChildren(ctx_, root, table_->Rows("a")).size(), 2u);
  EXPECT_EQ(JoinChildren(ctx_, root, table_->Rows("b")).size(), 0u);
  EXPECT_EQ(JoinChildren(ctx_, root, table_->Rows("d")).size(), 1u);
}

TEST_F(PlanTest, SelectFollowingExcludesDescendantsAndPreceding) {
  std::vector<NodeId> first_a = {table_->Rows("a")[0]};
  // Following the first a: second a, its b, and d — but not the first a's
  // own children.
  std::vector<NodeId> all = table_->AllRows();
  std::vector<NodeId> following = SelectFollowing(ctx_, first_a, all);
  EXPECT_EQ(following.size(), 3u);
  for (NodeId id : following) {
    EXPECT_FALSE(tree_->IsAncestor(first_a[0], id));
    EXPECT_GT(scheme_.low(id), scheme_.low(first_a[0]));
  }
}

TEST_F(PlanTest, SelectPrecedingExcludesAncestors) {
  std::vector<NodeId> ds = table_->Rows("d");
  std::vector<NodeId> all = table_->AllRows();
  std::vector<NodeId> preceding = SelectPreceding(ctx_, ds, all);
  // Everything before d except its ancestor r: 2 a's, 2 b's, 1 c.
  EXPECT_EQ(preceding.size(), 5u);
  for (NodeId id : preceding) {
    EXPECT_FALSE(tree_->IsAncestor(id, ds[0]));
  }
}

TEST_F(PlanTest, SiblingAxes) {
  std::vector<NodeId> first_a = {table_->Rows("a")[0]};
  std::vector<NodeId> all = table_->AllRows();
  std::vector<NodeId> following = SelectFollowingSiblings(ctx_, first_a, all);
  // Siblings after the first a: the second a and d.
  EXPECT_EQ(following.size(), 2u);
  std::vector<NodeId> second_a = {table_->Rows("a")[1]};
  std::vector<NodeId> preceding = SelectPrecedingSiblings(ctx_, second_a, all);
  EXPECT_EQ(preceding.size(), 1u);
  EXPECT_EQ(preceding[0], first_a[0]);
}

TEST_F(PlanTest, PositionFilterSelectsNthPerParent) {
  std::vector<NodeId> bs = table_->Rows("b");
  // b is the 1st b-child in both of its parents.
  EXPECT_EQ(PositionFilter(ctx_, bs, 1).size(), 2u);
  EXPECT_EQ(PositionFilter(ctx_, bs, 2).size(), 0u);
  std::vector<NodeId> as = table_->Rows("a");
  std::vector<NodeId> second = PositionFilter(ctx_, as, 2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], as[1]);
}

TEST_F(PlanTest, SortByOrderSortsAndDeduplicates) {
  std::vector<NodeId> rows = table_->AllRows();
  std::vector<NodeId> shuffled = {rows[3], rows[0], rows[3], rows[1]};
  std::vector<NodeId> sorted = SortByOrder(ctx_, shuffled);
  EXPECT_EQ(sorted, (std::vector<NodeId>{rows[0], rows[1], rows[3]}));
}

TEST_F(PlanTest, StatsAccumulateAcrossOperators) {
  EvalStats before = ctx_.stats;
  JoinDescendants(ctx_, table_->Rows("r"), table_->AllRows());
  SelectFollowing(ctx_, table_->Rows("a"), table_->AllRows());
  EXPECT_GT(ctx_.stats.rows_scanned, before.rows_scanned);
  EXPECT_GT(ctx_.stats.label_tests, before.label_tests);
  EXPECT_GT(ctx_.stats.order_lookups, before.order_lookups);
}

TEST_F(PlanTest, MergeJoinMatchesNestedLoop) {
  for (const char* anchor_tag : {"r", "a", "b", "d"}) {
    for (const char* candidate_tag : {"a", "b", "c", "d"}) {
      std::vector<NodeId> nested = JoinDescendants(
          ctx_, table_->Rows(anchor_tag), table_->Rows(candidate_tag));
      std::vector<NodeId> merged = JoinDescendantsMerge(
          ctx_, table_->Rows(anchor_tag), table_->Rows(candidate_tag));
      EXPECT_EQ(merged, nested) << anchor_tag << " -> " << candidate_tag;
    }
  }
}

TEST(PlanMergeJoin, MatchesNestedLoopOnRandomTrees) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomTreeOptions options;
    options.node_count = 400;
    options.max_depth = 7;
    options.max_fanout = 6;
    options.seed = seed;
    XmlTree tree = GenerateRandomTree(options);
    LabelTable table(tree);
    IntervalScheme scheme;
    scheme.LabelTree(tree);
    SchemeOracle oracle(&scheme,
                        [&scheme](NodeId id) { return scheme.low(id); });
    QueryContext ctx;
    ctx.table = &table;
    ctx.oracle = &oracle;
    for (const std::string& anchor_tag : table.Tags()) {
      for (const std::string& candidate_tag : table.Tags()) {
        ASSERT_EQ(JoinDescendantsMerge(ctx, table.Rows(anchor_tag),
                                       table.Rows(candidate_tag)),
                  JoinDescendants(ctx, table.Rows(anchor_tag),
                                  table.Rows(candidate_tag)))
            << seed << " " << anchor_tag << " -> " << candidate_tag;
      }
    }
  }
}

TEST(PlanMergeJoin, UsesFewerLabelTestsThanNestedLoop) {
  RandomTreeOptions options;
  options.node_count = 2000;
  options.max_depth = 6;
  options.max_fanout = 10;
  options.seed = 9;
  XmlTree tree = GenerateRandomTree(options);
  LabelTable table(tree);
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  SchemeOracle oracle(&scheme, [&scheme](NodeId id) { return scheme.low(id); });
  QueryContext nested_ctx, merge_ctx;
  for (QueryContext* ctx : {&nested_ctx, &merge_ctx}) {
    ctx->table = &table;
    ctx->oracle = &oracle;
  }
  std::vector<NodeId> anchors = table.Rows("a");
  std::vector<NodeId> candidates = table.AllRows();
  ASSERT_GT(anchors.size(), 10u);
  JoinDescendants(nested_ctx, anchors, candidates);
  JoinDescendantsMerge(merge_ctx, anchors, candidates);
  EXPECT_LT(merge_ctx.stats.label_tests, nested_ctx.stats.label_tests / 2);
}

TEST(PlanWithPrimeScheme, OrderLookupsGoThroughScTable) {
  Result<XmlTree> doc = TestDoc();
  ASSERT_TRUE(doc.ok());
  XmlTree tree = std::move(doc.value());
  LabelTable table(tree);
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  QueryContext ctx;
  ctx.table = &table;
  ctx.oracle = &scheme;
  std::vector<NodeId> first_a = {table.Rows("a")[0]};
  std::vector<NodeId> following =
      SelectFollowing(ctx, first_a, table.AllRows());
  EXPECT_EQ(following.size(), 3u);
}

}  // namespace
}  // namespace primelabel
