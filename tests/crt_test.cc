#include "core/crt.h"

#include <gtest/gtest.h>

#include "primes/prime_source.h"
#include "util/rng.h"

namespace primelabel {
namespace {

TEST(Crt, PaperExampleSection41) {
  // "Given a list of prime numbers P = [3, 4, 5] and a list of integers
  // I = [1, 2, 3], ... there exists a number x = 58."
  Result<BigInt> x = SolveCrt({{3, 1}, {4, 2}, {5, 3}});
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(x->ToDecimalString(), "58");
}

TEST(Crt, PaperExampleFigure9) {
  // Self-labels [2,3,5,7,11,13] with orders [1,2,3,4,5,6] give SC 29243,
  // and 29243 mod 5 = 3 recovers the third node's order.
  Result<BigInt> x =
      SolveCrt({{2, 1}, {3, 2}, {5, 3}, {7, 4}, {11, 5}, {13, 6}});
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(x->ToDecimalString(), "29243");
  EXPECT_EQ((*x % BigInt(5)).ToDecimalString(), "3");
}

TEST(Crt, PaperExampleFigure10SplitTable) {
  // Figure 10: the first five nodes produce SC 1523 and the sixth alone 6.
  Result<BigInt> first = SolveCrt({{2, 1}, {3, 2}, {5, 3}, {7, 4}, {11, 5}});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->ToDecimalString(), "1523");
  Result<BigInt> second = SolveCrt({{13, 6}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ToDecimalString(), "6");
}

TEST(Crt, PaperExampleFigure12AfterInsert) {
  // Section 4.2: after inserting the node with self-label 17 at order 3,
  // the second record solves x mod 13 = 7, x mod 17 = 3.
  Result<BigInt> x = SolveCrt({{13, 7}, {17, 3}});
  ASSERT_TRUE(x.ok());
  BigInt v = x.value();
  EXPECT_EQ((v % BigInt(13)).ToDecimalString(), "7");
  EXPECT_EQ((v % BigInt(17)).ToDecimalString(), "3");
  // And the first record solves the shifted orders of 2,3,5,7,11.
  Result<BigInt> y = SolveCrt({{2, 1}, {3, 2}, {5, 4}, {7, 5}, {11, 6}});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ((y.value() % BigInt(5)).ToDecimalString(), "4");
  EXPECT_EQ((y.value() % BigInt(7)).ToDecimalString(), "5");
}

TEST(Crt, SingleCongruence) {
  Result<BigInt> x = SolveCrt({{7, 4}});
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->ToDecimalString(), "4");
}

TEST(Crt, SolutionIsInRange) {
  Result<BigInt> x = SolveCrt({{97, 96}, {89, 88}, {83, 82}});
  ASSERT_TRUE(x.ok());
  BigInt product = BigInt(97) * BigInt(89) * BigInt(83);
  EXPECT_GE(*x, BigInt(0));
  EXPECT_LT(*x, product);
}

TEST(Crt, RejectsNonCoprimeModuli) {
  Result<BigInt> x = SolveCrt({{4, 1}, {6, 5}});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(Crt, RejectsRemainderAtOrAboveModulus) {
  EXPECT_FALSE(SolveCrt({{5, 5}}).ok());
  EXPECT_FALSE(SolveCrt({{5, 7}}).ok());
}

TEST(Crt, RejectsEmptySystemAndTinyModuli) {
  EXPECT_FALSE(SolveCrt({}).ok());
  EXPECT_FALSE(SolveCrt({{1, 0}}).ok());
  EXPECT_FALSE(SolveCrt({{0, 0}}).ok());
}

TEST(Crt, EulerVariantMatchesInverseVariant) {
  PrimeSource primes;
  Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    std::vector<Congruence> system;
    std::size_t base = rng.Below(50);
    int k = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < k; ++i) {
      std::uint64_t m = primes.PrimeAt(base + static_cast<std::size_t>(i));
      system.push_back({m, rng.Below(m)});
    }
    Result<BigInt> a = SolveCrt(system);
    Result<BigInt> b = SolveCrtEuler(system);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << "round " << round;
  }
}

TEST(Crt, EulerVariantHandlesPrimePowers) {
  // Moduli need not be prime, only pairwise coprime: 4 = 2^2, 9 = 3^2.
  Result<BigInt> a = SolveCrt({{4, 3}, {9, 4}, {25, 7}});
  Result<BigInt> b = SolveCrtEuler({{4, 3}, {9, 4}, {25, 7}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ((a.value() % BigInt(4)).ToDecimalString(), "3");
  EXPECT_EQ((a.value() % BigInt(9)).ToDecimalString(), "4");
  EXPECT_EQ((a.value() % BigInt(25)).ToDecimalString(), "7");
}

TEST(Crt, FastSolverMatchesInverseVariantAtEverySize) {
  // SolveCrtFast is the production path behind ScTable::Recompute; it must
  // be bit-identical to the textbook SolveCrt at every system size the SC
  // table can produce, including the degenerate size-1 record.
  PrimeSource primes;
  Rng rng(42);
  for (int size = 1; size <= 64; ++size) {
    std::vector<Congruence> system;
    std::size_t base = rng.Below(500);
    for (int i = 0; i < size; ++i) {
      std::uint64_t m = primes.PrimeAt(base + static_cast<std::size_t>(i));
      system.push_back({m, rng.Below(m)});
    }
    Result<BigInt> slow = SolveCrt(system);
    Result<BigInt> fast = SolveCrtFast(system);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(slow.value(), fast.value()) << "system size " << size;
  }
}

TEST(Crt, FastSolverHandlesPrimePowersAndRejectsBadInput) {
  Result<BigInt> slow = SolveCrt({{4, 3}, {9, 4}, {25, 7}});
  Result<BigInt> fast = SolveCrtFast({{4, 3}, {9, 4}, {25, 7}});
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(slow.value(), fast.value());
  EXPECT_FALSE(SolveCrtFast({}).ok());
  EXPECT_FALSE(SolveCrtFast({{4, 1}, {6, 5}}).ok());
  EXPECT_FALSE(SolveCrtFast({{5, 5}}).ok());
}

TEST(Crt, AllCongruencesSatisfiedOnRandomSystems) {
  PrimeSource primes;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<Congruence> system;
    std::size_t base = rng.Below(1000);
    int k = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < k; ++i) {
      std::uint64_t m = primes.PrimeAt(base + static_cast<std::size_t>(i) * 2);
      system.push_back({m, rng.Below(m)});
    }
    Result<BigInt> x = SolveCrt(system);
    ASSERT_TRUE(x.ok());
    for (const Congruence& c : system) {
      EXPECT_EQ((x.value() % BigInt::FromUint64(c.modulus)).ToUint64(),
                c.remainder)
          << "mod " << c.modulus;
    }
  }
}

TEST(EulerTotient, KnownValues) {
  EXPECT_EQ(EulerTotientU64(1), 1u);
  EXPECT_EQ(EulerTotientU64(2), 1u);
  EXPECT_EQ(EulerTotientU64(7), 6u);     // prime: p-1
  EXPECT_EQ(EulerTotientU64(8), 4u);     // 2^3: 2^2
  EXPECT_EQ(EulerTotientU64(9), 6u);     // 3^2: 3*2
  EXPECT_EQ(EulerTotientU64(12), 4u);    // {1,5,7,11}
  EXPECT_EQ(EulerTotientU64(100), 40u);
  EXPECT_EQ(EulerTotientU64(997), 996u);
}

TEST(EulerTotient, MultiplicativeOnCoprimes) {
  EXPECT_EQ(EulerTotientU64(35), EulerTotientU64(5) * EulerTotientU64(7));
  EXPECT_EQ(EulerTotientU64(77), EulerTotientU64(7) * EulerTotientU64(11));
}

}  // namespace
}  // namespace primelabel
