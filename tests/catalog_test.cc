#include "store/catalog.h"

#include <unistd.h>

#include <cstdio>
#include <optional>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bigint/reduction.h"
#include "corpus/labeled_document.h"
#include "xml/datasets.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlayOptions options;
    options.acts = 2;
    options.scenes_per_act = 2;
    options.min_speeches_per_scene = 2;
    options.max_speeches_per_scene = 4;
    options.seed = 21;
    doc_.emplace(
        LabeledDocument::FromTree(GeneratePlay("t", options), /*group=*/5));
  }

  const XmlTree& tree() const { return doc_->tree(); }
  const OrderedPrimeScheme& scheme() const { return doc_->scheme(); }

  std::optional<LabeledDocument> doc_;
};

TEST_F(CatalogTest, SaveLoadRoundTripsRows) {
  std::string path = TempPath("roundtrip.plc");
  ASSERT_TRUE(SaveCatalog(path, *doc_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<NodeId> preorder = tree().PreorderNodes();
  ASSERT_EQ(loaded->rows().size(), preorder.size());
  for (std::size_t i = 0; i < preorder.size(); ++i) {
    const CatalogRow& row = loaded->rows()[i];
    EXPECT_EQ(row.tag, tree().name(preorder[i]));
    EXPECT_EQ(row.is_element, tree().IsElement(preorder[i]));
    EXPECT_EQ(row.attributes, tree().node(preorder[i]).attributes);
    EXPECT_EQ(row.label, scheme().structure().label(preorder[i]));
    EXPECT_EQ(row.self, scheme().structure().self_label(preorder[i]));
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, LoadedCatalogAnswersStructureQueries) {
  std::string path = TempPath("structure.plc");
  ASSERT_TRUE(SaveCatalog(path, *doc_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok());

  std::vector<NodeId> preorder = tree().PreorderNodes();
  // Rows are in document order: compare against the live tree for a sample
  // of pairs.
  for (std::size_t x = 0; x < preorder.size(); x += 7) {
    for (std::size_t y = 0; y < preorder.size(); y += 5) {
      EXPECT_EQ(loaded->IsAncestor(x, y),
                tree().IsAncestor(preorder[x], preorder[y]))
          << x << " " << y;
      EXPECT_EQ(loaded->IsParent(x, y),
                tree().parent(preorder[y]) == preorder[x])
          << x << " " << y;
    }
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, LoadedCatalogAnswersOrderQueries) {
  std::string path = TempPath("order.plc");
  ASSERT_TRUE(SaveCatalog(path, *doc_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok());
  // Row index == preorder rank == order number.
  for (std::size_t i = 0; i < loaded->rows().size(); i += 3) {
    EXPECT_EQ(loaded->OrderOf(i), i);
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, SurvivesOrderSensitiveUpdateBeforeSave) {
  std::vector<NodeId> acts = doc_->Query("//act").value();
  ASSERT_GE(acts.size(), 2u);
  doc_->InsertBefore(acts[1], "act");
  std::string path = TempPath("updated.plc");
  ASSERT_TRUE(doc_->Save(path).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok());
  std::vector<NodeId> preorder = tree().PreorderNodes();
  for (std::size_t i = 0; i < preorder.size(); ++i) {
    EXPECT_EQ(loaded->OrderOf(i), scheme().OrderOf(preorder[i])) << i;
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, LoadRestoresLiveDocument) {
  std::string path = TempPath("restore.plc");
  ASSERT_TRUE(doc_->Save(path).ok());
  Result<LabeledDocument> restored = LabeledDocument::Load(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::remove(path.c_str());

  // Structure, labels, and SC table carry over bit-identically.
  std::vector<NodeId> original = tree().PreorderNodes();
  std::vector<NodeId> rebuilt = restored->tree().PreorderNodes();
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored->tree().name(rebuilt[i]), tree().name(original[i]));
    EXPECT_EQ(restored->scheme().structure().label(rebuilt[i]),
              scheme().structure().label(original[i]));
    EXPECT_EQ(restored->scheme().OrderOf(rebuilt[i]),
              scheme().OrderOf(original[i]));
  }

  // Queries (including attribute predicates) answer as before the restart.
  for (const char* q : {"/play//act", "/play//scene[2]", "//speech/speaker"}) {
    EXPECT_EQ(restored->Query(q).value().size(), doc_->Query(q).value().size())
        << q;
  }
}

TEST_F(CatalogTest, RestoredDocumentAcceptsUpdatesWithFreshPrimes) {
  std::string path = TempPath("update-after-load.plc");
  ASSERT_TRUE(doc_->Save(path).ok());
  Result<LabeledDocument> restored = LabeledDocument::Load(path);
  ASSERT_TRUE(restored.ok());
  std::remove(path.c_str());

  std::vector<NodeId> acts = restored->Query("//act").value();
  ASSERT_FALSE(acts.empty());
  NodeId fresh = restored->InsertAfter(acts.back(), "act");
  EXPECT_GE(restored->last_update_cost(), 1);

  // The adopted cursor must hand the new node a prime no stored label
  // already uses — self-labels stay pairwise distinct.
  std::set<std::uint64_t> selves;
  for (NodeId id : restored->tree().PreorderNodes()) {
    if (id == restored->tree().root()) continue;
    EXPECT_TRUE(selves.insert(restored->scheme().structure().self_label(id))
                    .second)
        << "duplicate self-label at node " << id;
  }
  // The fresh node participates in order queries immediately.
  std::vector<NodeId> after = restored->Query("//act").value();
  EXPECT_EQ(after.size(), acts.size() + 1);
  EXPECT_EQ(after.back(), fresh);
}

TEST(CatalogAttributes, RoundTripThroughSaveAndLoad) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  tree.AddAttribute(a, "id", "first");
  tree.AddAttribute(a, "lang", "en");
  NodeId b = tree.AppendChild(root, "b");
  tree.AddAttribute(b, "id", "second");
  tree.AppendText(b, "payload");
  LabeledDocument doc = LabeledDocument::FromTree(std::move(tree));

  std::string path = TempPath("attrs.plc");
  ASSERT_TRUE(doc.Save(path).ok());
  Result<LabeledDocument> restored = LabeledDocument::Load(path);
  ASSERT_TRUE(restored.ok());
  std::remove(path.c_str());

  EXPECT_EQ(restored->Query("//a[@id='first']").value().size(), 1u);
  EXPECT_EQ(restored->Query("//b[@id='second']").value().size(), 1u);
  EXPECT_EQ(restored->Query("//a[@id='second']").value().size(), 0u);
  NodeId ra = restored->tree().FindFirst("a");
  ASSERT_NE(ra, kInvalidNodeId);
  EXPECT_EQ(restored->tree().node(ra).attributes,
            (std::vector<std::pair<std::string, std::string>>{
                {"id", "first"}, {"lang", "en"}}));
  // Text nodes survive too.
  NodeId rb = restored->tree().FindFirst("b");
  ASSERT_NE(rb, kInvalidNodeId);
  NodeId text = restored->tree().first_child(rb);
  ASSERT_NE(text, kInvalidNodeId);
  EXPECT_FALSE(restored->tree().IsElement(text));
  EXPECT_EQ(restored->tree().name(text), "payload");
}

TEST_F(CatalogTest, V3PersistsFingerprintsAndSkipsRecompute) {
  // Emit the document's rows as format v3 explicitly (Save now writes the
  // newest format, v4 — its adoption path is covered separately).
  std::string v4_path = TempPath("v3-fps-src.plc");
  ASSERT_TRUE(doc_->Save(v4_path).ok());
  Result<LoadedCatalog> src = LoadCatalog(DefaultVfs(), v4_path);
  ASSERT_TRUE(src.ok());
  std::string path = TempPath("v3-fps.plc");
  CatalogWriteOptions v3_options;
  v3_options.format_version = 3;
  ASSERT_TRUE(WriteCatalog(DefaultVfs(), path, src->rows(), src->sc_table(),
                           v3_options)
                  .ok());
  std::remove(v4_path.c_str());

  // Loading a v3 catalog whose config hash matches this binary must adopt
  // the stored fingerprints wholesale: zero FingerprintOf calls on the
  // load path (counter-instrumented in bigint/reduction.cc).
  std::uint64_t before = FingerprintComputeCount();
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version(), 3);
  EXPECT_TRUE(loaded->fingerprints_persisted());
  EXPECT_EQ(FingerprintComputeCount(), before);

  // The document-level load adopts them too.
  before = FingerprintComputeCount();
  Result<LabeledDocument> restored = LabeledDocument::Load(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(FingerprintComputeCount(), before);

  // Adopted fingerprints reject/accept exactly like recomputed ones.
  std::vector<NodeId> live = restored->Query("//speech").value();
  EXPECT_EQ(live.size(), doc_->Query("//speech").value().size());
  std::remove(path.c_str());
}

TEST_F(CatalogTest, V2FilesStayLoadableWithRecompute) {
  std::string v3_path = TempPath("compat.plc");
  ASSERT_TRUE(doc_->Save(v3_path).ok());
  Result<LoadedCatalog> v3 = LoadCatalog(DefaultVfs(), v3_path);
  ASSERT_TRUE(v3.ok());

  // Re-emit the same rows as format v2 (the compatibility knob).
  std::string v2_path = TempPath("compat-v2.plc");
  CatalogWriteOptions options;
  options.format_version = 2;
  ASSERT_TRUE(
      WriteCatalog(DefaultVfs(), v2_path, v3->rows(), v3->sc_table(), options).ok());

  std::uint64_t before = FingerprintComputeCount();
  Result<LoadedCatalog> v2 = LoadCatalog(DefaultVfs(), v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->format_version(), 2);
  EXPECT_FALSE(v2->fingerprints_persisted());
  // The v2 path pays the per-row recompute the v3 format eliminates.
  EXPECT_GE(FingerprintComputeCount() - before, v2->rows().size());

  // Both answer identically.
  for (std::size_t x = 0; x < v2->rows().size(); x += 5) {
    for (std::size_t y = 0; y < v2->rows().size(); y += 3) {
      EXPECT_EQ(v2->IsAncestor(x, y), v3->IsAncestor(x, y));
    }
    EXPECT_EQ(v2->OrderOf(x), v3->OrderOf(x));
  }
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
}

TEST_F(CatalogTest, V3StaleConfigHashFallsBackToRecompute) {
  // Write a v3 file explicitly; in v4 the config hash sits inside the
  // digested header, so flipping it is (correctly) corruption, not a
  // stale-config fallback.
  std::string v4_path = TempPath("stale-hash-src.plc");
  ASSERT_TRUE(doc_->Save(v4_path).ok());
  Result<LoadedCatalog> src = LoadCatalog(DefaultVfs(), v4_path);
  ASSERT_TRUE(src.ok());
  std::string path = TempPath("stale-hash.plc");
  CatalogWriteOptions v3_options;
  v3_options.format_version = 3;
  ASSERT_TRUE(WriteCatalog(DefaultVfs(), path, src->rows(), src->sc_table(),
                           v3_options)
                  .ok());
  std::remove(v4_path.c_str());

  // Flip a byte of the stored FingerprintConfigHash (the 8 bytes right
  // after the magic): the stored fingerprints were built by a "different"
  // binary, so the load must recompute rather than adopt.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, 8, SEEK_SET);
  std::fputc(byte ^ 0x5A, f);
  std::fclose(f);

  std::uint64_t before = FingerprintComputeCount();
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version(), 3);
  EXPECT_FALSE(loaded->fingerprints_persisted());
  EXPECT_GE(FingerprintComputeCount() - before, loaded->rows().size());

  // Recomputed fingerprints keep the oracle sound.
  std::vector<NodeId> preorder = tree().PreorderNodes();
  for (std::size_t x = 0; x < preorder.size(); x += 7) {
    for (std::size_t y = 0; y < preorder.size(); y += 5) {
      EXPECT_EQ(loaded->IsAncestor(x, y),
                tree().IsAncestor(preorder[x], preorder[y]));
    }
  }
  std::remove(path.c_str());
}

TEST(CatalogErrors, UnsupportedVersionNamesFoundAndSupported) {
  // A future-format file must fail with a message naming what was found
  // and what this build can read — not a generic parse error.
  std::string path = TempPath("v7.plc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("PLCATLG7", f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::string message = loaded.status().ToString();
  EXPECT_NE(message.find("format version 7"), std::string::npos) << message;
  EXPECT_NE(message.find("2 .. 4"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(CatalogErrors, MissingFile) {
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), TempPath("does-not-exist.plc"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CatalogErrors, BadMagic) {
  std::string path = TempPath("garbage.plc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a catalog at all", f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CatalogErrors, RejectsV1Files) {
  // The v1 magic is one byte off; files written before the attribute
  // format must fail cleanly rather than parse garbage.
  std::string path = TempPath("v1.plc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("PLCATLG1", f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CatalogErrors, TruncatedFile) {
  // Save a real catalog, then chop it and expect a clean failure.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  tree.AppendChild(root, "a");
  tree.AppendChild(root, "b");
  LabeledDocument doc = LabeledDocument::FromTree(std::move(tree));
  std::string path = TempPath("truncated.plc");
  ASSERT_TRUE(doc.Save(path).ok());
  // Read, truncate to 60%, rewrite.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<std::size_t>(size), '\0');
  ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(data.data(), 1, data.size() * 6 / 10, f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(LabeledDocument::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace primelabel
