#include "store/catalog.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "xml/datasets.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlayOptions options;
    options.acts = 2;
    options.scenes_per_act = 2;
    options.min_speeches_per_scene = 2;
    options.max_speeches_per_scene = 4;
    options.seed = 21;
    tree_ = GeneratePlay("t", options);
    scheme_.LabelTree(tree_);
  }

  XmlTree tree_;
  OrderedPrimeScheme scheme_{/*sc_group_size=*/5};
};

TEST_F(CatalogTest, SaveLoadRoundTripsRows) {
  std::string path = TempPath("roundtrip.plc");
  ASSERT_TRUE(SaveCatalog(path, tree_, scheme_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<NodeId> preorder = tree_.PreorderNodes();
  ASSERT_EQ(loaded->rows().size(), preorder.size());
  for (std::size_t i = 0; i < preorder.size(); ++i) {
    const CatalogRow& row = loaded->rows()[i];
    EXPECT_EQ(row.tag, tree_.name(preorder[i]));
    EXPECT_EQ(row.is_element, tree_.IsElement(preorder[i]));
    EXPECT_EQ(row.label, scheme_.structure().label(preorder[i]));
    EXPECT_EQ(row.self, scheme_.structure().self_label(preorder[i]));
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, LoadedCatalogAnswersStructureQueries) {
  std::string path = TempPath("structure.plc");
  ASSERT_TRUE(SaveCatalog(path, tree_, scheme_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok());

  std::vector<NodeId> preorder = tree_.PreorderNodes();
  // Rows are in document order: compare against the live tree for a sample
  // of pairs.
  for (std::size_t x = 0; x < preorder.size(); x += 7) {
    for (std::size_t y = 0; y < preorder.size(); y += 5) {
      EXPECT_EQ(loaded->IsAncestor(x, y),
                tree_.IsAncestor(preorder[x], preorder[y]))
          << x << " " << y;
      EXPECT_EQ(loaded->IsParent(x, y),
                tree_.parent(preorder[y]) == preorder[x])
          << x << " " << y;
    }
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, LoadedCatalogAnswersOrderQueries) {
  std::string path = TempPath("order.plc");
  ASSERT_TRUE(SaveCatalog(path, tree_, scheme_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok());
  // Row index == preorder rank == order number.
  for (std::size_t i = 0; i < loaded->rows().size(); i += 3) {
    EXPECT_EQ(loaded->OrderOf(i), i);
  }
  std::remove(path.c_str());
}

TEST_F(CatalogTest, SurvivesOrderSensitiveUpdateBeforeSave) {
  std::vector<NodeId> acts = tree_.FindAll("act");
  NodeId fresh = tree_.InsertBefore(acts[1], "act");
  scheme_.HandleOrderedInsert(fresh);
  std::string path = TempPath("updated.plc");
  ASSERT_TRUE(SaveCatalog(path, tree_, scheme_).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok());
  std::vector<NodeId> preorder = tree_.PreorderNodes();
  for (std::size_t i = 0; i < preorder.size(); ++i) {
    EXPECT_EQ(loaded->OrderOf(i), scheme_.OrderOf(preorder[i])) << i;
  }
  std::remove(path.c_str());
}

TEST(CatalogErrors, MissingFile) {
  Result<LoadedCatalog> loaded = LoadCatalog(TempPath("does-not-exist.plc"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CatalogErrors, BadMagic) {
  std::string path = TempPath("garbage.plc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a catalog at all", f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CatalogErrors, TruncatedFile) {
  // Save a real catalog, then chop it and expect a clean failure.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  tree.AppendChild(root, "a");
  tree.AppendChild(root, "b");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  std::string path = TempPath("truncated.plc");
  ASSERT_TRUE(SaveCatalog(path, tree, scheme).ok());
  // Read, truncate to 60%, rewrite.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<std::size_t>(size), '\0');
  ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(data.data(), 1, data.size() * 6 / 10, f);
  std::fclose(f);
  Result<LoadedCatalog> loaded = LoadCatalog(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace primelabel
