// Concurrency suite for the epoch reader/writer protocol: one writer
// mutates and checkpoints a DurableDocumentStore while reader threads pin
// epochs and materialize frozen views. Run under ThreadSanitizer by
// scripts/check.sh (the tsan leg matches 'Epoch|Concurrent').
//
// The protocol's promise: a pin captures an (epoch, committed-journal-
// bytes) point atomically, OpenSnapshot materializes exactly that point,
// and epoch retirement never yanks files out from under a live pin.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/durable_document_store.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::string StateDigest(const LabeledDocument& doc) {
  std::ostringstream out;
  doc.tree().Preorder([&](NodeId id, int depth) {
    out << depth << '|' << doc.tree().name(id) << '|'
        << doc.scheme().structure().self_label(id) << '|'
        << doc.scheme().structure().label(id).ToHexString() << '|'
        << doc.scheme().OrderOf(id) << '\n';
  });
  return out.str();
}

std::string SmallPlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 7;
  return SerializeXml(GeneratePlay("concurrent", options));
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

TEST(EpochConcurrency, PinnedReadersSeeCommittedStatesBitIdentically) {
  std::string dir = TempDirPath("epoch-concurrent-read");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // The writer publishes, after every committed op, the digest of the
  // state at (epoch, durable journal bytes). A reader that pins the same
  // point must materialize a bit-identical document.
  std::mutex mu;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> committed;
  {
    std::lock_guard<std::mutex> lock(mu);
    committed[{store->epoch(), store->durable_journal_bytes()}] =
        StateDigest(store->document());
  }

  std::atomic<bool> done{false};
  std::atomic<int> hits{0};

  std::thread writer([&] {
    std::mt19937 rng(99);
    for (int i = 0; i < 96; ++i) {
      std::vector<NodeId> elements =
          NonRootElements(store->document().tree());
      NodeId anchor = elements[rng() % elements.size()];
      Status applied = Status::Ok();
      switch (rng() % 3) {
        case 0: applied = store->InsertAfter(anchor, "ia").status(); break;
        case 1: applied = store->AppendChild(anchor, "ac").status(); break;
        case 2: applied = store->Wrap(anchor, "wr").status(); break;
      }
      ASSERT_TRUE(applied.ok()) << applied.ToString();
      if (i % 16 == 15) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
      std::lock_guard<std::mutex> lock(mu);
      committed[{store->epoch(), store->durable_journal_bytes()}] =
          StateDigest(store->document());
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      // Keep reading through the storm, plus at least two spins after the
      // writer quiesces: a pin taken then captures the writer's final
      // published point, so every reader is guaranteed verifiable hits
      // even on a single-core box where storm-time pins tend to land
      // mid-mutation (between the frames of one op, a never-published
      // point).
      int post_done = 0;
      while (post_done < 2) {
        if (done.load()) ++post_done;
        Result<Snapshot> snap = store->OpenSnapshot();
        ASSERT_TRUE(snap.ok())
            << "reader " << r << ": " << snap.status().ToString();
        const std::pair<std::uint64_t, std::uint64_t> key{
            snap->epoch(), snap->journal_bytes()};
        const std::string digest = StateDigest(snap->document());
        std::lock_guard<std::mutex> lock(mu);
        auto it = committed.find(key);
        // A pin can land between a commit and the writer publishing its
        // digest; such misses are fine. Matching points must be
        // bit-identical.
        if (it != committed.end()) {
          EXPECT_EQ(digest, it->second)
              << "pinned view diverged at epoch " << key.first << " +"
              << key.second << "B";
          hits.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  // Every reader's post-quiescence pins must match the final published
  // point; never matching would mean the pin snapshot itself is broken.
  EXPECT_GE(hits.load(), 4);

  // The store is still healthy and durable after the storm.
  ASSERT_TRUE(store->Flush().ok());
  const std::string live = StateDigest(store->document());
  Result<DurableDocumentStore> reopened = DurableDocumentStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), live);
  RemoveTree(dir);
}

TEST(EpochConcurrency, PinChurnDuringCheckpointsNeverBreaksRetirement) {
  std::string dir = TempDirPath("epoch-concurrent-churn");
  RemoveTree(dir);
  DurableDocumentStore::Options options;
  options.max_delta_chain = 2;  // force frequent full compactions too
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml(), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    std::mt19937 rng(7);
    for (int i = 0; i < 48; ++i) {
      std::vector<NodeId> elements =
          NonRootElements(store->document().tree());
      ASSERT_TRUE(
          store->AppendChild(elements[rng() % elements.size()], "n").ok());
      // Checkpoint often: every swing retires whatever epochs no pin holds.
      if (i % 6 == 5) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
    }
    done.store(true);
  });

  std::vector<std::thread> pinners;
  for (int p = 0; p < 4; ++p) {
    pinners.emplace_back([&] {
      int spins = 0;
      while (!done.load() || spins < 4) {
        ++spins;
        // Hold an overlapping raw pin and a snapshot, then drop them all.
        EpochPin b = store->PinEpoch();
        ASSERT_TRUE(b.valid());
        Result<Snapshot> snap = store->OpenSnapshot();
        ASSERT_TRUE(snap.ok()) << snap.status().ToString();
        ASSERT_TRUE(snap->document().tree().node_count() > 0);
        // snap's pin and b both released by destructors at scope exit.
      }
    });
  }

  writer.join();
  for (std::thread& pinner : pinners) pinner.join();

  // All pins are gone: one more swing retires every stale epoch, and the
  // store recovers bit-identically.
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->Flush().ok());
  const std::string live = StateDigest(store->document());
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), live);
  RemoveTree(dir);
}

}  // namespace
}  // namespace primelabel
