// Randomized equivalence suites for the dispatched limb kernels
// (bigint/simd.h) and the reduction engine built on them. The vector
// kernels' whole contract is "bit-identical to the portable reference on
// every input", so these tests hammer that claim three ways:
//
//   * kernel vs kernel — dispatched output against *Portable on random
//     operands (mixed sizes, all-ones carry stress, unaligned subspans,
//     empty spans);
//   * kernel vs BigInt — the same products/residues against the BigInt
//     arithmetic they accelerate (the independent ground truth);
//   * engine vs engine — ReciprocalDivisor under vector vs pinned-scalar
//     dispatch, and the optimized engine (short-product Barrett +
//     Montgomery divisibility) against the reference engine
//     (SetReferenceEngineForTest), including the even-divisor /
//     power-of-two / short-dividend edge cases Montgomery splits on.
//
// On a host without vector kernels (or a -DPRIMELABEL_DISABLE_SIMD=ON
// build) the dispatched calls resolve to the portable bodies and these
// suites degrade to self-consistency checks — still worth running, since
// the engine comparisons exercise real reduction paths either way.

#include "bigint/simd.h"

#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/reduction.h"
#include "util/rng.h"

namespace primelabel {
namespace {

using Limb = std::uint32_t;

// Declared first in the file so it runs before anything can trigger the
// lazy crossover measurement when the whole binary runs in one process
// (under ctest each test is its own process anyway). The env override is
// clamped to [2, 32] (64-bit limbs).
TEST(SimdKernels, BarrettMinLimbsHonorsEnvOverride) {
  setenv("PRIMELABEL_BARRETT_MIN_LIMBS", "5", /*overwrite=*/1);
  EXPECT_EQ(ReciprocalDivisor::BarrettMinLimbs(), 5u);
  unsetenv("PRIMELABEL_BARRETT_MIN_LIMBS");
  // Cached after first use: later calls keep the value they started with.
  EXPECT_EQ(ReciprocalDivisor::BarrettMinLimbs(), 5u);
}

BigInt FromLimbs(std::span<const Limb> limbs) {
  BigInt value;
  for (std::size_t i = limbs.size(); i-- > 0;) {
    value = (value << 32) + BigInt::FromUint64(limbs[i]);
  }
  return value;
}

/// Random limb vector; bias > 0 makes roughly bias% of limbs 0xffffffff
/// to force long carry chains through the accumulators.
std::vector<Limb> RandomLimbs(Rng& rng, std::size_t n, unsigned bias) {
  std::vector<Limb> v(n);
  for (Limb& limb : v) {
    limb = rng.Chance(bias) ? ~Limb{0} : static_cast<Limb>(rng.Next());
  }
  return v;
}

TEST(SimdKernels, MulMatchesPortableAndBigInt) {
  Rng rng(101);
  std::vector<Limb> dispatched, portable;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t na = rng.Below(60);
    const std::size_t nb = rng.Below(200);
    const unsigned bias = trial % 3 == 0 ? 40 : 0;
    std::vector<Limb> a = RandomLimbs(rng, na, bias);
    std::vector<Limb> b = RandomLimbs(rng, nb, bias);
    simd::MulLimbSpans(a, b, &dispatched);
    simd::MulLimbSpansPortable(a, b, &portable);
    ASSERT_EQ(dispatched, portable) << "trial " << trial;
    const BigInt truth = FromLimbs(a) * FromLimbs(b);
    ASSERT_EQ(FromLimbs(dispatched), truth) << "trial " << trial;
  }
}

TEST(SimdKernels, MulAllOnesCarrySaturation) {
  // (B^n - 1)^2 maximizes every column sum and carry — the worst case for
  // the split lo/hi accumulator recombine.
  std::vector<Limb> dispatched, portable;
  for (std::size_t n : {1u, 2u, 4u, 13u, 64u, 129u, 300u}) {
    std::vector<Limb> ones(n, ~Limb{0});
    simd::MulLimbSpans(ones, ones, &dispatched);
    simd::MulLimbSpansPortable(ones, ones, &portable);
    ASSERT_EQ(dispatched, portable) << "n=" << n;
    ASSERT_EQ(FromLimbs(dispatched), FromLimbs(ones) * FromLimbs(ones));
  }
}

TEST(SimdKernels, MulUnalignedSubspansAndEmpty) {
  Rng rng(103);
  std::vector<Limb> backing = RandomLimbs(rng, 300, 10);
  std::vector<Limb> dispatched, portable;
  for (int trial = 0; trial < 100; ++trial) {
    // Odd offsets into one backing buffer: the AVX2 loads must cope with
    // any alignment.
    const std::size_t off_a = rng.Below(7) + 1;
    const std::size_t off_b = rng.Below(5) + 1;
    const std::size_t na = rng.Below(80);
    const std::size_t nb = rng.Below(80);
    std::span<const Limb> a(backing.data() + off_a, na);
    std::span<const Limb> b(backing.data() + off_b, nb);
    simd::MulLimbSpans(a, b, &dispatched);
    simd::MulLimbSpansPortable(a, b, &portable);
    ASSERT_EQ(dispatched, portable);
    ASSERT_EQ(FromLimbs(dispatched), FromLimbs(a) * FromLimbs(b));
  }
  // Zero-length operands: empty product, both paths.
  simd::MulLimbSpans({}, backing, &dispatched);
  EXPECT_TRUE(dispatched.empty());
  simd::MulLimbSpansPortable(backing, {}, &portable);
  EXPECT_TRUE(portable.empty());
}

TEST(SimdKernels, HighProductMatchesPortableAndFullAtCutZero) {
  Rng rng(107);
  std::vector<Limb> dispatched, portable, full;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t na = 1 + rng.Below(48);
    const std::size_t nb = 1 + rng.Below(48);
    std::vector<Limb> a = RandomLimbs(rng, na, trial % 4 == 0 ? 30 : 0);
    std::vector<Limb> b = RandomLimbs(rng, nb, 0);
    // Random cut across the whole column range (including past the end,
    // where the product has no columns left and the result is empty).
    const std::size_t cut = rng.Below(na + nb + 2);
    simd::MulLimbSpansHigh(a, b, cut, &dispatched);
    simd::MulLimbSpansHighPortable(a, b, cut, &portable);
    ASSERT_EQ(dispatched, portable)
        << "trial " << trial << " cut " << cut;
    if (cut == 0) {
      simd::MulLimbSpans(a, b, &full);
      ASSERT_EQ(dispatched, full);
    }
  }
}

TEST(SimdKernels, LowProductIsExactTruncatedProduct) {
  Rng rng(109);
  std::vector<Limb> dispatched, portable, full;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t na = 1 + rng.Below(48);
    const std::size_t nb = 1 + rng.Below(48);
    std::vector<Limb> a = RandomLimbs(rng, na, trial % 4 == 0 ? 30 : 0);
    std::vector<Limb> b = RandomLimbs(rng, nb, 0);
    const std::size_t width = rng.Below(na + nb + 4);
    simd::MulLimbSpansLow(a, b, width, &dispatched);
    simd::MulLimbSpansLowPortable(a, b, width, &portable);
    ASSERT_EQ(dispatched, portable)
        << "trial " << trial << " width " << width;
    // Ground truth: the full product truncated to `width` limbs.
    simd::MulLimbSpans(a, b, &full);
    if (full.size() > width) full.resize(width);
    while (!full.empty() && full.back() == 0) full.pop_back();
    ASSERT_EQ(dispatched, full) << "trial " << trial << " width " << width;
  }
}

TEST(SimdKernels, ChunkResiduesMatchModU64) {
  Rng rng(113);
  // 1030 and 2048 cross the kernel's 1024-limb power-table block border.
  for (std::size_t n : {1u, 2u, 7u, 33u, 100u, 1024u, 1030u, 2048u}) {
    std::vector<Limb> magnitude = RandomLimbs(rng, n, n % 2 ? 25 : 0);
    std::uint64_t dispatched[simd::kChunkCount];
    std::uint64_t portable[simd::kChunkCount];
    simd::ChunkResidues(magnitude, dispatched);
    simd::ChunkResiduesPortable(magnitude, portable);
    const BigInt value = FromLimbs(magnitude);
    for (int j = 0; j < simd::kChunkCount; ++j) {
      ASSERT_EQ(dispatched[j], portable[j]) << "n=" << n << " chunk " << j;
      ASSERT_EQ(dispatched[j],
                value.ModU64(kFingerprintChunkTable[j].product))
          << "n=" << n << " chunk " << j;
    }
  }
}

TEST(SimdKernels, DispatchOverrideRoundTrips) {
  const simd::Isa detected = simd::DetectedIsa();
  EXPECT_EQ(simd::ActiveIsa(), detected);
  simd::SetActiveIsa(simd::Isa::kScalar);
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  // Requesting a vector ISA clamps to what the host actually has.
  simd::SetActiveIsa(simd::Isa::kAvx2);
  EXPECT_TRUE(simd::ActiveIsa() == detected ||
              simd::ActiveIsa() == simd::Isa::kScalar);
  simd::ResetActiveIsa();
  EXPECT_EQ(simd::ActiveIsa(), detected);
}

/// One deterministic pool of (divisor, dividend) pairs that stresses every
/// engine strategy and the Montgomery edge cases: word-sized through
/// Barrett-sized divisors; even divisors and pure powers of two (the
/// 2^e * odd split); dividends shorter than, equal to, and far wider than
/// the divisor; exact multiples and off-by-one near-multiples.
std::vector<std::pair<BigInt, BigInt>> EnginePairs() {
  Rng rng(127);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (std::size_t dlimbs : {1u, 2u, 3u, 5u, 9u, 16u, 33u}) {
    for (int variant = 0; variant < 10; ++variant) {
      std::vector<Limb> d = RandomLimbs(rng, dlimbs, variant % 3 ? 0 : 35);
      if (d.back() == 0) d.back() = 1;
      BigInt divisor = FromLimbs(d);
      if (variant % 4 == 1) divisor = divisor << static_cast<int>(rng.Below(40));  // even divisor
      if (variant == 7) divisor = BigInt::FromUint64(1) << static_cast<int>(32 * dlimbs);  // power of two
      if (divisor.IsZero()) divisor = BigInt::FromUint64(3);
      const std::size_t ylimbs = rng.Below(4 * dlimbs + 4);
      BigInt dividend = FromLimbs(RandomLimbs(rng, ylimbs, 0));
      switch (variant % 5) {
        case 0:  // exact multiple
          dividend = divisor * dividend;
          break;
        case 1:  // near-multiple (off by one — must not divide)
          dividend = divisor * dividend + BigInt::FromUint64(1);
          break;
        case 2:  // the divisor itself
          dividend = divisor;
          break;
        default:  // random (incl. dividend shorter than divisor)
          break;
      }
      pairs.emplace_back(std::move(divisor), std::move(dividend));
    }
  }
  return pairs;
}

TEST(SimdKernels, ReciprocalDivisorScalarVsVectorBitIdentical) {
  ReciprocalDivisor vec_rd, scalar_rd;
  for (const auto& [divisor, dividend] : EnginePairs()) {
    vec_rd.Assign(divisor);
    const bool vec_divides = vec_rd.Divides(dividend);
    const BigInt vec_mod = vec_rd.Mod(dividend);
    simd::SetActiveIsa(simd::Isa::kScalar);
    scalar_rd.Assign(divisor);
    const bool scalar_divides = scalar_rd.Divides(dividend);
    const BigInt scalar_mod = scalar_rd.Mod(dividend);
    simd::ResetActiveIsa();
    ASSERT_EQ(vec_divides, scalar_divides)
        << divisor << " | " << dividend;
    ASSERT_EQ(vec_mod, scalar_mod) << dividend << " mod " << divisor;
    // And both against the BigInt ground truth.
    ASSERT_EQ(vec_divides, dividend.IsDivisibleBy(divisor));
    ASSERT_EQ(vec_mod, dividend % divisor);
  }
}

TEST(SimdKernels, ReferenceEngineMatchesOptimizedEngine) {
  ReciprocalDivisor opt_rd, ref_rd;
  for (const auto& [divisor, dividend] : EnginePairs()) {
    opt_rd.Assign(divisor);
    const bool opt_divides = opt_rd.Divides(dividend);
    const BigInt opt_mod = opt_rd.Mod(dividend);
    ReciprocalDivisor::SetReferenceEngineForTest(true);
    ref_rd.Assign(divisor);
    const bool ref_divides = ref_rd.Divides(dividend);
    const BigInt ref_mod = ref_rd.Mod(dividend);
    ReciprocalDivisor::SetReferenceEngineForTest(false);
    ASSERT_EQ(opt_divides, ref_divides) << divisor << " | " << dividend;
    ASSERT_EQ(opt_mod, ref_mod) << dividend << " mod " << divisor;
    ASSERT_EQ(opt_divides, dividend.IsDivisibleBy(divisor));
  }
}

TEST(SimdKernels, DividesBatchMatchesScalarDivides) {
  // Batches of 1..4 dividends against one cached divisor, under vector
  // and pinned-scalar dispatch, vs per-dividend Divides: all four answers
  // must agree bit-for-bit. EnginePairs supplies mixed widths, so batches
  // mix REDC-lane survivors with fingerprint-free screen outs (shorter
  // dividends, trailing-zero mismatches, zero).
  const auto pairs = EnginePairs();
  ReciprocalDivisor rd;
  for (std::size_t start = 0; start + simd::kRedcLanes <= pairs.size();
       start += simd::kRedcLanes) {
    const BigInt& divisor = pairs[start].first;
    rd.Assign(divisor);
    for (std::size_t count = 1; count <= simd::kRedcLanes; ++count) {
      const BigInt* batch[simd::kRedcLanes];
      bool expected[simd::kRedcLanes];
      for (std::size_t k = 0; k < count; ++k) {
        batch[k] = &pairs[start + k].second;
        expected[k] = rd.Divides(*batch[k]);
      }
      bool vec_out[simd::kRedcLanes];
      rd.DividesBatch(std::span<const BigInt* const>(batch, count), vec_out);
      bool scalar_out[simd::kRedcLanes];
      simd::SetActiveIsa(simd::Isa::kScalar);
      rd.DividesBatch(std::span<const BigInt* const>(batch, count),
                      scalar_out);
      simd::ResetActiveIsa();
      for (std::size_t k = 0; k < count; ++k) {
        ASSERT_EQ(vec_out[k], expected[k])
            << "lane " << k << "/" << count << " divisor " << divisor;
        ASSERT_EQ(scalar_out[k], expected[k])
            << "lane " << k << "/" << count << " divisor " << divisor;
        ASSERT_EQ(expected[k], batch[k]->IsDivisibleBy(divisor));
      }
    }
  }
}

TEST(SimdKernels, DividesIntoBatchMatchesIsDivisibleBy) {
  // The SelectAncestors shape: one dividend, batches of 1..4 candidate
  // divisors, vector vs pinned-scalar vs BigInt ground truth.
  const auto pairs = EnginePairs();
  for (std::size_t start = 0; start + simd::kRedcLanes <= pairs.size();
       start += 7) {
    // A dividend wide enough to make several candidates plausible: the
    // product of two pool divisors.
    const BigInt dividend = pairs[start].first * pairs[start + 1].first;
    for (std::size_t count = 1; count <= simd::kRedcLanes; ++count) {
      const BigInt* divisors[simd::kRedcLanes];
      for (std::size_t k = 0; k < count; ++k) {
        divisors[k] = &pairs[start + k].first;
      }
      bool vec_out[simd::kRedcLanes];
      DividesIntoBatch(dividend,
                       std::span<const BigInt* const>(divisors, count),
                       vec_out);
      bool scalar_out[simd::kRedcLanes];
      simd::SetActiveIsa(simd::Isa::kScalar);
      DividesIntoBatch(dividend,
                       std::span<const BigInt* const>(divisors, count),
                       scalar_out);
      simd::ResetActiveIsa();
      for (std::size_t k = 0; k < count; ++k) {
        const bool truth = dividend.IsDivisibleBy(*divisors[k]);
        ASSERT_EQ(vec_out[k], truth)
            << *divisors[k] << " into " << dividend;
        ASSERT_EQ(scalar_out[k], truth)
            << *divisors[k] << " into " << dividend;
      }
    }
  }
}

TEST(SimdKernels, MontgomeryEdgeCases) {
  ReciprocalDivisor rd;
  Rng rng(131);
  // Dividend with fewer limbs than the divisor: never divisible.
  const BigInt wide = FromLimbs(RandomLimbs(rng, 20, 0));
  rd.Assign(wide);
  EXPECT_FALSE(rd.Divides(BigInt::FromUint64(12345)));
  // Zero dividend: divisible by anything.
  EXPECT_TRUE(rd.Divides(BigInt()));
  // Multi-limb power-of-two divisor against staggered trailing zeros.
  for (int e : {96, 127, 128, 129}) {
    const BigInt pow2 = BigInt::FromUint64(1) << e;
    rd.Assign(pow2);
    EXPECT_TRUE(rd.Divides(BigInt::FromUint64(7) << e));
    EXPECT_TRUE(rd.Divides(BigInt::FromUint64(7) << (e + 5)));
    EXPECT_FALSE(rd.Divides(BigInt::FromUint64(7) << (e - 1)));
  }
  // Even divisor whose odd part also matters: d = 2^70 * odd (the product
  // of two odd words is odd).
  const BigInt odd = BigInt::FromUint64(0x1234567890abcdefull) *
                     BigInt::FromUint64(0xfedcba0987654321ull);
  ASSERT_EQ(odd.ModU64(2), 1u);
  const BigInt even_divisor = odd << 70;
  rd.Assign(even_divisor);
  EXPECT_TRUE(rd.Divides(even_divisor * BigInt::FromUint64(99)));
  EXPECT_FALSE(rd.Divides(odd << 69));  // enough odd part, too few twos
  EXPECT_FALSE(rd.Divides((odd + BigInt::FromUint64(2)) << 70));
}

}  // namespace
}  // namespace primelabel
