// Determinism guards. The EXPERIMENTS.md numbers are only reproducible if
// (a) every scheme labels identically on repeated runs and (b) the
// synthetic corpora are bit-stable. The corpus fingerprints below pin the
// generators: changing a generator invalidates recorded experiment
// numbers, and this test makes that visible instead of silent.

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/decomposed_prime_scheme.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/dewey.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_bottom_up.h"
#include "labeling/prime_optimized.h"
#include "labeling/prime_top_down.h"
#include "xml/datasets.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

std::uint64_t Fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(Determinism, RelabelingIsIdempotentForEveryScheme) {
  RandomTreeOptions options;
  options.node_count = 300;
  options.max_depth = 6;
  options.max_fanout = 7;
  options.seed = 321;
  XmlTree tree = GenerateRandomTree(options);

  std::vector<std::unique_ptr<LabelingScheme>> schemes;
  schemes.push_back(std::make_unique<IntervalScheme>());
  schemes.push_back(std::make_unique<PrefixScheme>(PrefixVariant::kBinary));
  schemes.push_back(std::make_unique<DeweyScheme>());
  schemes.push_back(std::make_unique<PrimeTopDownScheme>());
  schemes.push_back(std::make_unique<PrimeBottomUpScheme>());
  schemes.push_back(std::make_unique<PrimeOptimizedScheme>());
  schemes.push_back(std::make_unique<OrderedPrimeScheme>());
  schemes.push_back(std::make_unique<DecomposedPrimeScheme>(3));
  for (auto& scheme : schemes) {
    scheme->LabelTree(tree);
    std::string first;
    tree.Preorder(
        [&](NodeId id, int) { first += scheme->LabelString(id) + "\n"; });
    scheme->LabelTree(tree);
    std::string second;
    tree.Preorder(
        [&](NodeId id, int) { second += scheme->LabelString(id) + "\n"; });
    EXPECT_EQ(first, second) << scheme->name();
  }
}

TEST(Determinism, CorpusFingerprintsArePinned) {
  // FNV-1a of the serialized documents. If a generator changes on purpose,
  // update these values AND re-run every bench into EXPERIMENTS.md.
  EXPECT_EQ(Fnv1a(SerializeXml(GenerateHamlet())), 18198576803306721021ull);
  const std::uint64_t expected[] = {
      2230843493310363012ull,   // D1 Sigmod record
      11510839220086057751ull,  // D2 Movie
      4521192389016569927ull,   // D3 Club
      13851709137549665276ull,  // D4 Actor
      590185791298847044ull,    // D5 Car
      1529316516699230641ull,   // D6 Department
      944269422045908576ull,    // D7 NASA
      18198576803306721021ull,  // D8 Plays (the Hamlet stand-in)
      597283170024825593ull,    // D9 Company
  };
  std::vector<DatasetSpec> specs = NiagaraCorpusSpecs();
  ASSERT_EQ(specs.size(), 9u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(Fnv1a(SerializeXml(GenerateDataset(specs[i]))), expected[i])
        << specs[i].id;
  }
}

TEST(Determinism, QueryCorpusIsStableAcrossStoreRebuilds) {
  XmlTree corpus = GenerateShakespeareCorpus(2);
  std::string first = SerializeXml(corpus);
  XmlTree again = GenerateShakespeareCorpus(2);
  EXPECT_EQ(first, SerializeXml(again));
}

}  // namespace
}  // namespace primelabel
