#include "sizemodel/size_model.h"

#include <memory>

#include <gtest/gtest.h>

#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_top_down.h"
#include "xml/tree.h"

namespace primelabel {
namespace {

TEST(PerfectTree, NodeCounts) {
  EXPECT_EQ(PerfectTreeNodeCount(0, 5), 1u);
  EXPECT_EQ(PerfectTreeNodeCount(1, 5), 6u);
  EXPECT_EQ(PerfectTreeNodeCount(2, 2), 7u);
  EXPECT_EQ(PerfectTreeNodeCount(3, 3), 40u);
  EXPECT_EQ(PerfectTreeNodeCount(2, 1), 3u);  // chain
}

TEST(PerfectTree, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(PerfectTreeNodeCount(100, 100),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SizeModel, IntervalGrowsLogarithmically) {
  EXPECT_NEAR(IntervalMaxLabelBits(1), 2.0, 1e-9);
  EXPECT_NEAR(IntervalMaxLabelBits(1024), 2.0 * 11.0, 1e-9);
  EXPECT_LT(IntervalMaxLabelBits(1u << 20), 44.0);
}

TEST(SizeModel, Figure4FanoutShape) {
  // Figure 4 (D=2): Prefix-1 linear in F, Prefix-2 logarithmic, Prime
  // nearly flat.
  double prefix1_growth =
      Prefix1SelfBits(50) - Prefix1SelfBits(10);      // 40 bits
  double prefix2_growth =
      Prefix2SelfBits(50) - Prefix2SelfBits(10);      // ~9.3 bits
  double prime_growth =
      PrimeSelfBits(2, 50) - PrimeSelfBits(2, 10);    // a few bits
  EXPECT_NEAR(prefix1_growth, 40.0, 1e-9);
  EXPECT_LT(prefix2_growth, 10.0);
  EXPECT_LT(prime_growth, 6.0);
  EXPECT_LT(prime_growth, prefix2_growth);
  // Crossover: for large fan-out, Prime's self labels beat Prefix-1.
  EXPECT_LT(PrimeSelfBits(2, 50), Prefix1SelfBits(50));
}

TEST(SizeModel, Figure5DepthShape) {
  // Figure 5 (F=15): prefixes are flat in depth, Prime grows.
  EXPECT_EQ(Prefix1SelfBits(15), Prefix1SelfBits(15));
  double prime_d2 = PrimeSelfBits(2, 15);
  double prime_d6 = PrimeSelfBits(6, 15);
  double prime_d10 = PrimeSelfBits(10, 15);
  EXPECT_LT(prime_d2, prime_d6);
  EXPECT_LT(prime_d6, prime_d10);
  // Full labels: Prefix-1 = D*F stays the fan-out line; Prime's full label
  // grows superlinearly with D on a perfect tree.
  EXPECT_GT(PrimeMaxLabelBits(10, 15), PrimeMaxLabelBits(5, 15) * 2);
}

TEST(SizeModel, Equation1And2AreDTimesSelf) {
  EXPECT_NEAR(Prefix1MaxLabelBits(3, 20), 60.0, 1e-9);
  EXPECT_NEAR(Prefix2MaxLabelBits(3, 16), 3.0 * 16.0, 1e-9);
  EXPECT_NEAR(Prefix2MaxLabelBits(2, 2), 8.0, 1e-9);
}

TEST(SizeModel, DegenerateInputs) {
  EXPECT_EQ(IntervalMaxLabelBits(0), 0.0);
  EXPECT_EQ(Prefix2SelfBits(1), 1.0);
  EXPECT_GE(PrimeSelfBits(0, 1), 1.0);
}

// The model must agree with the implementation: label a perfect tree and
// compare measured maxima against the closed forms.
class ModelVsMeasurementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

XmlTree BuildPerfectTree(int depth, int fanout) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("n");
  std::vector<NodeId> level = {root};
  for (int d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId parent : level) {
      for (int f = 0; f < fanout; ++f) {
        next.push_back(tree.AppendChild(parent, "n"));
      }
    }
    level = std::move(next);
  }
  return tree;
}

TEST_P(ModelVsMeasurementTest, MeasuredMaximaTrackTheModel) {
  auto [depth, fanout] = GetParam();
  XmlTree tree = BuildPerfectTree(depth, fanout);
  ASSERT_EQ(tree.node_count(), PerfectTreeNodeCount(depth, fanout));

  IntervalScheme interval;
  interval.LabelTree(tree);
  // The start/end variant's counter runs to 2N, one bit above the model's
  // per-endpoint N bound; allow that plus ceil-vs-log rounding.
  EXPECT_LE(interval.MaxLabelBits(),
            IntervalMaxLabelBits(tree.node_count()) + 2.0);

  PrefixScheme prefix1(PrefixVariant::kUnary);
  prefix1.LabelTree(tree);
  EXPECT_LE(prefix1.MaxLabelBits(),
            Prefix1MaxLabelBits(depth, fanout) + 1e-9);
  // The bound is attained by the deepest last child.
  EXPECT_EQ(prefix1.MaxLabelBits(), depth * fanout);

  PrefixScheme prefix2(PrefixVariant::kBinary);
  prefix2.LabelTree(tree);
  EXPECT_LE(prefix2.MaxLabelBits(),
            Prefix2MaxLabelBits(depth, fanout) + 4.0 * depth);

  PrimeTopDownScheme prime;
  prime.LabelTree(tree);
  // The model approximates the n-th prime; allow one bit per level slack.
  EXPECT_LE(prime.MaxLabelBits(),
            PrimeMaxLabelBits(depth, fanout) + depth + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModelVsMeasurementTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 3),
                      std::make_tuple(2, 10), std::make_tuple(3, 5),
                      std::make_tuple(4, 3), std::make_tuple(6, 2),
                      std::make_tuple(2, 25)));

}  // namespace
}  // namespace primelabel
