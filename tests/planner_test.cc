// Planner suite: plan-compiler lowering shapes, planned-vs-walked
// differential equivalence across scheme/catalog (heap and arena)
// backends, plan/result cache units, service wiring (result-cache hits,
// checkpoint invalidation, the EXPLAIN wire verb and STATS counters),
// and concurrent cached execution (PlannerConcurrent runs under
// ThreadSanitizer via the check.sh tsan leg).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/labeled_document.h"
#include "durability/vfs.h"
#include "planner/query_planner.h"
#include "service/query_service.h"
#include "service/wire.h"
#include "store/catalog.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"
#include "xpath/evaluator.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

XmlTree DiffPlay() {
  PlayOptions options;
  options.acts = 3;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 4;
  options.seed = 29;
  return GeneratePlay("diff", options);
}

// --- Compiler lowering shapes --------------------------------------------

std::vector<PlanOpKind> Kinds(const PhysicalPlan& plan) {
  std::vector<PlanOpKind> kinds;
  for (const PlanOp& op : plan.ops) kinds.push_back(op.kind);
  return kinds;
}

TEST(PlannerCompile, RootedDescendantFirstStepIsPureScan) {
  Result<PhysicalPlan> plan = PlanCompiler::Compile("/play//act");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Kinds(plan.value()),
            (std::vector<PlanOpKind>{PlanOpKind::kTagScan, PlanOpKind::kTagScan,
                                     PlanOpKind::kDescendantJoin}));
  EXPECT_EQ(plan->ops[2].input, 0);
  EXPECT_EQ(plan->ops[2].candidates, 1);
  EXPECT_EQ(plan->query, "//play//act");
  EXPECT_NE(plan->ToString().find("TagScan(play)"), std::string::npos);
  EXPECT_NE(plan->ToString().find("DescendantJoin(#0,#1)"), std::string::npos);
}

TEST(PlannerCompile, SortEmittedOnlyAfterPositionSelect) {
  // Joins preserve candidate (document) order, so a chain of joins needs
  // no sort at all...
  Result<PhysicalPlan> joins = PlanCompiler::Compile("/play//act//speaker");
  ASSERT_TRUE(joins.ok());
  for (const PlanOp& op : joins->ops) {
    EXPECT_NE(op.kind, PlanOpKind::kOrderSort);
  }
  // ...while a position predicate (group-major output) is resorted
  // immediately, and only there.
  Result<PhysicalPlan> position = PlanCompiler::Compile("/play//act[2]//line");
  ASSERT_TRUE(position.ok());
  int sorts = 0;
  for (std::size_t i = 0; i < position->ops.size(); ++i) {
    if (position->ops[i].kind != PlanOpKind::kOrderSort) continue;
    ++sorts;
    ASSERT_GT(i, 0u);
    EXPECT_EQ(position->ops[i - 1].kind, PlanOpKind::kPositionSelect);
  }
  EXPECT_EQ(sorts, 1);
}

TEST(PlannerCompile, PredicatesPushBelowTheJoin) {
  Result<PhysicalPlan> plan =
      PlanCompiler::Compile("/play//speaker[@name='HAMLET']");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops.size(), 4u);
  EXPECT_EQ(plan->ops[2].kind, PlanOpKind::kAttributeFilter);
  EXPECT_EQ(plan->ops[2].input, 1);  // filters the speaker scan...
  EXPECT_EQ(plan->ops[3].kind, PlanOpKind::kDescendantJoin);
  EXPECT_EQ(plan->ops[3].candidates, 2);  // ...and the join consumes the filter
}

TEST(PlannerCompile, ExplicitAxisFirstStepJoinsEmptyContext) {
  Result<PhysicalPlan> plan = PlanCompiler::Compile("//Following::act");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->ops.size(), 2u);
  EXPECT_EQ(plan->ops[1].kind, PlanOpKind::kFollowingFilter);
  EXPECT_EQ(plan->ops[1].input, -1);
  EXPECT_NE(plan->ToString().find("empty"), std::string::npos);
}

TEST(PlannerCompile, NormalizeCanonicalizesSpellings) {
  Result<std::string> a = PlanCompiler::Normalize("/play/act");
  Result<std::string> b = PlanCompiler::Normalize("//play/act");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), "//play/act");
}

TEST(PlannerCompile, ParseErrorsPropagate) {
  EXPECT_FALSE(PlanCompiler::Compile("act[").ok());
  EXPECT_FALSE(PlanCompiler::Normalize("").ok());
}

// --- Planned-vs-walked differential equivalence --------------------------

/// One (table, oracle) backend the differential battery runs on: the live
/// prime scheme, a heap-loaded catalog, or a zero-copy mmap arena catalog
/// — the planner and evaluator must agree bit-for-bit on all of them.
class PlannerDifferentialTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    doc_.emplace(LabeledDocument::FromTree(DiffPlay(), /*group=*/5));
    const std::string which = GetParam();
    if (which == "scheme") {
      // OrderedPrimeScheme implements StructureOracle itself: divisibility
      // ancestry plus SC-table order, the paper's native pipeline.
      ctx_.table = &doc_->label_table();
      ctx_.oracle = &doc_->scheme();
      return;
    }
    path_ = TempPath(which == "catalog-heap" ? "planner-heap.plc"
                                             : "planner-arena.plc");
    ASSERT_TRUE(SaveCatalog(path_, *doc_).ok());
    Result<LoadedCatalog> loaded =
        which == "catalog-heap" ? LoadCatalog(DefaultVfs(), path_)
                                : OpenCatalogMapped(DefaultVfs(), path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    catalog_ = std::make_unique<LoadedCatalog>(std::move(loaded.value()));
    EXPECT_EQ(catalog_->arena_backed(), which == "catalog-arena");
    table_ = std::make_unique<LabelTable>(*catalog_);
    ctx_.table = table_.get();
    ctx_.oracle = catalog_.get();
  }

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  /// Runs `query` through both engines and requires identical node sets
  /// in identical document order.
  void ExpectSame(const std::string& query) {
    XPathEvaluator evaluator(&ctx_);
    Result<std::vector<NodeId>> walked = evaluator.Evaluate(query);
    ASSERT_TRUE(walked.ok()) << query << ": " << walked.status().ToString();
    Result<PhysicalPlan> plan = PlanCompiler::Compile(query);
    ASSERT_TRUE(plan.ok()) << query << ": " << plan.status().ToString();
    std::vector<NodeId> planned = ExecutePlan(plan.value(), ctx_);
    EXPECT_EQ(planned, walked.value()) << query;
  }

  std::optional<LabeledDocument> doc_;
  std::unique_ptr<LoadedCatalog> catalog_;
  std::unique_ptr<LabelTable> table_;
  std::string path_;
  QueryContext ctx_;
};

TEST_P(PlannerDifferentialTest, Figure15Battery) {
  // The paper's Fig. 15 query set, as benched in bench_fig15_queries.
  for (const char* query :
       {"/play//act[4]", "/play//act[3]//Following::act", "/play//act//speaker",
        "/act[5]//Following::speech", "/speech[4]//Preceding::line",
        "/play//act[3]//line", "/play//speech[1]//Following-sibling::speech[3]",
        "/play//speech", "/play//line"}) {
    ExpectSame(query);
  }
}

TEST_P(PlannerDifferentialTest, AxisAndPredicateCoverage) {
  for (const char* query :
       {"/play/act/scene", "/play//line//Parent::speech",
        "//speaker//Ancestor::act", "//speech//Preceding-sibling::speaker",
        "//speaker[@name='HAMLET']", "/play//speech[@nonexistent='x']",
        "/play//*[3]", "//act//*", "//Following::act", "/play//title[1]",
        "/play//scene[2]//speech[1]"}) {
    ExpectSame(query);
  }
  // A text() predicate against real character data (lines carry text).
  const std::vector<NodeId>& lines = ctx_.table->Rows("line");
  ASSERT_FALSE(lines.empty());
  const std::string* text = ctx_.table->TextOf(lines[0]);
  if (text != nullptr && text->find('\'') == std::string::npos) {
    ExpectSame("/play//line[text()='" + *text + "']");
  }
}

TEST_P(PlannerDifferentialTest, RandomizedStepCombinations) {
  const char* tags[] = {"play", "act",     "scene", "speech",
                        "speaker", "line", "title", "*"};
  const char* axes[] = {"Following",         "Preceding", "Following-sibling",
                        "Preceding-sibling", "Parent",    "Ancestor"};
  const char* names[] = {"HAMLET", "OPHELIA", "NOBODY"};
  std::mt19937 rng(811);
  for (int i = 0; i < 60; ++i) {
    const int steps = 1 + static_cast<int>(rng() % 3);
    std::string query;
    for (int s = 0; s < steps; ++s) {
      if (rng() % 3 == 0) {
        query += "//";
        query += axes[rng() % 6];
        query += "::";
      } else {
        query += rng() % 2 == 0 ? "//" : "/";
      }
      query += tags[rng() % 8];
      if (rng() % 4 == 0) {
        query += "[@name='";
        query += names[rng() % 3];
        query += "']";
      }
      if (rng() % 3 == 0) {
        query += '[';
        query += std::to_string(1 + rng() % 4);
        query += ']';
      }
    }
    ExpectSame(query);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PlannerDifferentialTest,
                         ::testing::Values("scheme", "catalog-heap",
                                           "catalog-arena"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Cache units ----------------------------------------------------------

std::shared_ptr<const PhysicalPlan> MakePlan(const std::string& query) {
  Result<PhysicalPlan> plan = PlanCompiler::Compile(query);
  EXPECT_TRUE(plan.ok());
  return std::make_shared<const PhysicalPlan>(std::move(plan.value()));
}

TEST(PlannerCache, PlanCacheCountsHitsAndEvictsLru) {
  PlanCache cache(2);
  EXPECT_EQ(cache.Lookup("//a"), nullptr);
  cache.Insert("//a", MakePlan("//a"));
  cache.Insert("//b", MakePlan("//b"));
  EXPECT_NE(cache.Lookup("//a"), nullptr);  // touches //a: //b becomes LRU
  cache.Insert("//c", MakePlan("//c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("//b"), nullptr);
  EXPECT_NE(cache.Lookup("//a"), nullptr);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(PlannerCache, PlanCacheRacingInsertKeepsExisting) {
  PlanCache cache(4);
  auto first = cache.Insert("//a", MakePlan("//a"));
  auto second = cache.Insert("//a", MakePlan("//a"));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
}

ResultCache::NodeSet MakeResult(std::vector<NodeId> ids) {
  return std::make_shared<const std::vector<NodeId>>(std::move(ids));
}

TEST(PlannerCache, ResultCacheKeysOnSnapshotPoint) {
  ResultCache cache(8);
  cache.Insert("//a", /*epoch=*/1, /*journal_bytes=*/8, MakeResult({1, 2}));
  cache.Insert("//a", /*epoch=*/1, /*journal_bytes=*/40, MakeResult({1, 2, 3}));
  cache.Insert("//a", /*epoch=*/2, /*journal_bytes=*/8, MakeResult({7}));
  EXPECT_EQ(cache.size(), 3u);
  ASSERT_NE(cache.Lookup("//a", 1, 8), nullptr);
  EXPECT_EQ(cache.Lookup("//a", 1, 8)->size(), 2u);
  EXPECT_EQ(cache.Lookup("//a", 1, 40)->size(), 3u);
  EXPECT_EQ(cache.Lookup("//a", 2, 8)->size(), 1u);
  EXPECT_EQ(cache.Lookup("//b", 1, 8), nullptr);
}

TEST(PlannerCache, ResultCacheEvictStaleDropsSupersededEpochs) {
  ResultCache cache(8);
  cache.Insert("//a", 1, 8, MakeResult({1}));
  cache.Insert("//b", 1, 24, MakeResult({2}));
  cache.Insert("//a", 2, 8, MakeResult({3}));
  cache.EvictStale(/*current_epoch=*/2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_NE(cache.Lookup("//a", 2, 8), nullptr);
}

TEST(PlannerCache, ResultCacheLruBoundsCapacity) {
  ResultCache cache(2);
  cache.Insert("//a", 1, 8, MakeResult({1}));
  cache.Insert("//b", 1, 8, MakeResult({2}));
  cache.Insert("//c", 1, 8, MakeResult({3}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup("//a", 1, 8), nullptr);
}

// --- Service wiring -------------------------------------------------------

std::string ServicePlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 17;
  return SerializeXml(GeneratePlay("served", options));
}

QueryService MakePlannerService(const std::string& dir,
                                QueryService::Options options = {}) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, ServicePlayXml());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return QueryService(std::move(store.value()), options);
}

TEST(PlannerService, RepeatedQueryHitsResultCache) {
  QueryService service = MakePlannerService(TempPath("planner-svc-hit"));
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<Snapshot> snap = session->OpenSnapshot();
  ASSERT_TRUE(snap.ok());
  Result<std::vector<NodeId>> first = session->Query(*snap, "//speech");
  Result<std::vector<NodeId>> second = session->Query(*snap, "//speech");
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value(), second.value());
  const QueryPlanner::Stats stats = service.planner().stats();
  EXPECT_EQ(stats.result.misses, 1u);
  EXPECT_EQ(stats.result.hits, 1u);
  EXPECT_EQ(stats.plan.misses, 1u);
  EXPECT_EQ(stats.plan.hits, 1u);
}

TEST(PlannerService, CheckpointInvalidatesCachedResults) {
  QueryService service = MakePlannerService(TempPath("planner-svc-inval"));
  DurableDocumentStore& store = service.store();
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<Snapshot> snap = session->OpenSnapshot();
  ASSERT_TRUE(snap.ok());
  const std::size_t speeches =
      session->Query(*snap, "//speech").value().size();

  // Append a fresh speech and checkpoint: the retirement listener must
  // sweep the epoch-0 results alongside the epoch-0 views.
  std::vector<NodeId> scenes = store.Query("//scene").value();
  ASSERT_FALSE(scenes.empty());
  ASSERT_TRUE(store.AppendChild(scenes[0], "speech").ok());
  ASSERT_TRUE(store.Checkpoint().ok());
  EXPECT_GE(service.planner().stats().result.invalidations, 1u);

  // A fresh snapshot pins the new epoch and must see the new speech, not
  // a stale cached answer.
  Result<Snapshot> fresh = session->OpenSnapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->epoch(), snap->epoch());
  EXPECT_EQ(session->Query(*fresh, "//speech").value().size(), speeches + 1);
}

TEST(PlannerService, PlannerPathMatchesEvaluatorFallback) {
  QueryService planned = MakePlannerService(TempPath("planner-svc-on"));
  QueryService::Options off;
  off.use_planner = false;
  QueryService walked = MakePlannerService(TempPath("planner-svc-off"), off);
  Result<Session> planned_session = planned.OpenSession();
  Result<Session> walked_session = walked.OpenSession();
  ASSERT_TRUE(planned_session.ok() && walked_session.ok());
  Result<Snapshot> planned_snap = planned_session->OpenSnapshot();
  Result<Snapshot> walked_snap = walked_session->OpenSnapshot();
  ASSERT_TRUE(planned_snap.ok() && walked_snap.ok());
  for (const char* query : {"//speech", "/play//act[2]//line",
                            "/play//speech[1]//Following-sibling::speech[3]"}) {
    Result<std::vector<NodeId>> a = planned_session->Query(*planned_snap, query);
    Result<std::vector<NodeId>> b = walked_session->Query(*walked_snap, query);
    ASSERT_TRUE(a.ok() && b.ok()) << query;
    EXPECT_EQ(a.value(), b.value()) << query;
  }
  // The evaluator path must not touch the planner caches.
  EXPECT_EQ(walked.planner().stats().result.misses, 0u);
}

TEST(PlannerService, ExplainWireVerbAndStatsCounters) {
  QueryService service = MakePlannerService(TempPath("planner-svc-wire"));
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  std::optional<Snapshot> snapshot;
  bool done = false;

  // EXPLAIN before SNAP is the usual typed error.
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot,
                               "EXPLAIN //speech", &done)
                .rfind("ERR InvalidArgument", 0),
            0u);
  ASSERT_EQ(ExecuteRequestLine(service, *session, &snapshot, "SNAP", &done)
                .rfind("OK ", 0),
            0u);
  const std::string explained = ExecuteRequestLine(
      service, *session, &snapshot, "EXPLAIN /play//act[2]", &done);
  EXPECT_EQ(explained.rfind("OK #0 ", 0), 0u) << explained;
  EXPECT_NE(explained.find("TagScan(act)"), std::string::npos);
  EXPECT_NE(explained.find("PositionSelect"), std::string::npos);
  EXPECT_NE(explained.find("OrderSort"), std::string::npos);
  EXPECT_NE(explained.find("out="), std::string::npos);

  ExecuteRequestLine(service, *session, &snapshot, "XPATH //speech", &done);
  ExecuteRequestLine(service, *session, &snapshot, "XPATH //speech", &done);
  const std::string stats =
      ExecuteRequestLine(service, *session, &snapshot, "STATS", &done);
  EXPECT_NE(stats.find("PLANHITS "), std::string::npos) << stats;
  EXPECT_NE(stats.find("PLANMISSES "), std::string::npos);
  EXPECT_NE(stats.find("RESHITS 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("RESINVALIDATIONS 0"), std::string::npos);
}

// --- Concurrent cached execution (ThreadSanitizer leg) --------------------

TEST(PlannerConcurrent, CachedExecutionIsRaceFreeUnderWriterChurn) {
  QueryService service = MakePlannerService(TempPath("planner-svc-tsan"));
  DurableDocumentStore& store = service.store();
  std::atomic<bool> done{false};

  std::thread writer([&] {
    std::mt19937 rng(53);
    for (int i = 0; i < 32; ++i) {
      std::vector<NodeId> scenes = store.Query("//scene").value();
      ASSERT_TRUE(store.AppendChild(scenes[rng() % scenes.size()], "w").ok());
      if (i % 8 == 7) {
        ASSERT_TRUE(store.Checkpoint().ok());
      }
    }
    ASSERT_TRUE(store.Flush().ok());
    done.store(true);
  });

  // Readers hammer a small query set so plan/result cache entries are
  // shared, re-inserted, and invalidated concurrently; EXPLAIN executes
  // uncached alongside.
  const char* queries[] = {"//speech", "/play//act[1]//line", "//speaker",
                           "/play//scene[2]"};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Result<Session> session = service.OpenSession();
      ASSERT_TRUE(session.ok());
      int spin = 0;
      while (!done.load() || spin < 8) {
        ++spin;
        Result<Snapshot> snap = session->OpenSnapshot();
        ASSERT_TRUE(snap.ok());
        Result<std::vector<NodeId>> ids =
            session->Query(*snap, queries[(r + spin) % 4]);
        ASSERT_TRUE(ids.ok());
        if (spin % 5 == 0) {
          ASSERT_TRUE(session->Explain(*snap, queries[r % 4]).ok());
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  const QueryPlanner::Stats stats = service.planner().stats();
  EXPECT_GT(stats.plan.hits, 0u);
  // Racing first lookups may each count a miss before one insert wins, so
  // misses is at least (not exactly) the distinct-query count.
  EXPECT_GE(stats.plan.misses, 4u);
}

}  // namespace
}  // namespace primelabel
