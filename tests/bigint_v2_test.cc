// Differential suite for the engine-v2 64-bit-limb BigInt: every
// arithmetic path is raced against an embedded 32-bit-limb reference
// implementation — a faithful miniature of the pre-v2 representation
// (sign-free magnitudes, base 2^32, schoolbook multiply, Knuth Algorithm
// D with add-back) — over randomized operands per size class plus the
// crafted Knuth D3/D6 corner cases (qhat overestimates, saturated trial
// quotients, the add-back row). Values cross between the two worlds
// through the limb-width-independent minimal little-endian byte encoding
// (ToMagnitudeBytes/FromMagnitudeBytes), the same contract that keeps the
// on-disk formats stable across the migration.
//
// The last test pins the multi-dividend REDC batch kernel: 1/2/3/4-lane
// batches (full vector groups and every partial tail) must agree with the
// portable sweep, the dispatched sweep, and BigInt::IsDivisibleBy.

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/simd.h"
#include "util/rng.h"

namespace primelabel {
namespace {

// --- The 32-bit-limb reference implementation ------------------------------

/// Nonnegative bignum over base-2^32 digits, little-endian, no high zero
/// digits (empty = zero). Mirrors the pre-v2 BigInt magnitude layer.
using Ref = std::vector<std::uint32_t>;

void RefStrip(Ref* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

Ref RefAdd(const Ref& a, const Ref& b) {
  Ref out(std::max(a.size(), b.size()) + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t cur = carry;
    if (i < a.size()) cur += a[i];
    if (i < b.size()) cur += b[i];
    out[i] = static_cast<std::uint32_t>(cur);
    carry = cur >> 32;
  }
  RefStrip(&out);
  return out;
}

/// a - b; requires a >= b.
Ref RefSub(const Ref& a, const Ref& b) {
  Ref out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t cur = static_cast<std::int64_t>(a[i]) - borrow -
                       (i < b.size() ? b[i] : 0);
    borrow = 0;
    if (cur < 0) {
      cur += std::int64_t{1} << 32;
      borrow = 1;
    }
    out[i] = static_cast<std::uint32_t>(cur);
  }
  RefStrip(&out);
  return out;
}

int RefCompare(const Ref& a, const Ref& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Ref RefMul(const Ref& a, const Ref& b) {
  if (a.empty() || b.empty()) return {};
  Ref out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur =
          out[i + j] + static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + b.size()] = static_cast<std::uint32_t>(carry);
  }
  RefStrip(&out);
  return out;
}

Ref RefShl(const Ref& a, int bits) {
  if (a.empty()) return {};
  const int digits = bits / 32, rem = bits % 32;
  Ref out(a.size() + static_cast<std::size_t>(digits) + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t w = static_cast<std::uint64_t>(a[i]) << rem;
    out[i + digits] |= static_cast<std::uint32_t>(w);
    out[i + digits + 1] |= static_cast<std::uint32_t>(w >> 32);
  }
  RefStrip(&out);
  return out;
}

Ref RefShr(const Ref& a, int bits) {
  const std::size_t digits = static_cast<std::size_t>(bits) / 32;
  const int rem = bits % 32;
  if (digits >= a.size()) return {};
  Ref out(a.size() - digits, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t w = a[i + digits] >> rem;
    if (rem != 0 && i + digits + 1 < a.size()) {
      w |= static_cast<std::uint64_t>(a[i + digits + 1]) << (32 - rem);
    }
    out[i] = static_cast<std::uint32_t>(w);
  }
  RefStrip(&out);
  return out;
}

/// Knuth Algorithm D over base-2^32 digits, exactly as the pre-v2 engine
/// ran it: 2-digit trial quotients, the D3 overestimate correction loop,
/// and the D6 add-back. Returns {quotient, remainder}; b must be nonzero.
std::pair<Ref, Ref> RefDivMod(const Ref& a, const Ref& b) {
  if (RefCompare(a, b) < 0) return {{}, a};
  if (b.size() == 1) {
    Ref q(a.size(), 0);
    std::uint64_t r = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (r << 32) | a[i];
      q[i] = static_cast<std::uint32_t>(cur / b[0]);
      r = cur % b[0];
    }
    RefStrip(&q);
    Ref rem;
    if (r != 0) rem.push_back(static_cast<std::uint32_t>(r));
    return {std::move(q), std::move(rem)};
  }
  // D1: normalize so the divisor's top digit has its high bit set.
  int shift = 0;
  for (std::uint32_t top = b.back(); !(top & 0x80000000u); top <<= 1) ++shift;
  Ref u = RefShl(a, shift);
  Ref v = RefShl(b, shift);
  const std::size_t n = v.size(), m = u.size() - n;
  u.resize(u.size() + 1, 0);  // the extra top digit D1 calls for
  Ref q(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: trial qhat from the top two dividend digits against v's top;
    // qhat <= q + 2 <= B + 1, so qhat * v[n-2] <= (B+1)(B-1) < 2^64.
    std::uint64_t top2 =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = top2 / v[n - 1];
    std::uint64_t rhat = top2 % v[n - 1];
    while (qhat > 0xffffffffull ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat > 0xffffffffull) break;
    }
    // D4: multiply-subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t cur = static_cast<std::int64_t>(u[i + j]) - borrow -
                         static_cast<std::int64_t>(p & 0xffffffffull);
      borrow = 0;
      if (cur < 0) {
        cur += std::int64_t{1} << 32;
        borrow = 1;
      }
      u[i + j] = static_cast<std::uint32_t>(cur);
    }
    std::int64_t top = static_cast<std::int64_t>(u[j + n]) - borrow -
                       static_cast<std::int64_t>(carry);
    // D6: qhat was one too large after all — add v back once.
    if (top < 0) {
      --qhat;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t cur = static_cast<std::uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<std::uint32_t>(cur);
        c2 = cur >> 32;
      }
      top += static_cast<std::int64_t>(c2);
    }
    u[j + n] = static_cast<std::uint32_t>(top);
    q[j] = static_cast<std::uint32_t>(qhat);
  }
  u.resize(n);
  RefStrip(&u);
  RefStrip(&q);
  return {std::move(q), RefShr(u, shift)};
}

// --- Crossing between the worlds -------------------------------------------

std::vector<std::uint8_t> RefBytes(const Ref& v) {
  std::vector<std::uint8_t> bytes;
  for (std::uint32_t d : v) {
    for (int b = 0; b < 4; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(d >> (8 * b)));
    }
  }
  while (!bytes.empty() && bytes.back() == 0) bytes.pop_back();
  return bytes;
}

BigInt ToBig(const Ref& v) { return BigInt::FromMagnitudeBytes(RefBytes(v)); }

Ref FromBig(const BigInt& value) {
  std::vector<std::uint8_t> bytes = value.ToMagnitudeBytes();
  Ref out((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  RefStrip(&out);
  return out;
}

Ref RandomRef(Rng& rng, std::size_t digits, unsigned ones_bias) {
  Ref v(digits);
  for (std::uint32_t& d : v) {
    d = rng.Chance(ones_bias) ? ~std::uint32_t{0}
                              : static_cast<std::uint32_t>(rng.Next());
  }
  RefStrip(&v);
  return v;
}

// --- The differential sweeps -----------------------------------------------

/// Size classes in 32-bit digits. 10'000 random pairs each; the classes
/// straddle every 64-bit strategy boundary (1-limb word path, odd digit
/// counts that leave a half-filled top limb, the Karatsuba crossover at
/// 16 64-bit limbs = 32 digits, and multi-chunk reduction sizes).
constexpr std::size_t kSizeClasses[] = {1, 2, 3, 4, 7, 8, 16, 32, 33, 64};
constexpr int kPairsPerClass = 10'000;

TEST(BigIntV2, AddSubDifferential) {
  Rng rng(20260801);
  for (std::size_t digits : kSizeClasses) {
    for (int trial = 0; trial < kPairsPerClass; ++trial) {
      const unsigned bias = trial % 4 == 0 ? 35 : 0;
      Ref a = RandomRef(rng, digits, bias);
      Ref b = RandomRef(rng, 1 + rng.Below(digits), bias);
      const BigInt ba = ToBig(a), bb = ToBig(b);
      ASSERT_EQ(FromBig(ba + bb), RefAdd(a, b))
          << "digits=" << digits << " trial=" << trial;
      if (RefCompare(a, b) >= 0) {
        ASSERT_EQ(FromBig(ba - bb), RefSub(a, b))
            << "digits=" << digits << " trial=" << trial;
      } else {
        ASSERT_EQ(FromBig(bb - ba), RefSub(b, a))
            << "digits=" << digits << " trial=" << trial;
      }
    }
  }
}

TEST(BigIntV2, MulDifferential) {
  Rng rng(20260802);
  for (std::size_t digits : kSizeClasses) {
    for (int trial = 0; trial < kPairsPerClass; ++trial) {
      const unsigned bias = trial % 4 == 0 ? 35 : 0;
      Ref a = RandomRef(rng, digits, bias);
      Ref b = RandomRef(rng, 1 + rng.Below(digits), bias);
      ASSERT_EQ(FromBig(ToBig(a) * ToBig(b)), RefMul(a, b))
          << "digits=" << digits << " trial=" << trial;
    }
  }
}

TEST(BigIntV2, ShiftDifferential) {
  Rng rng(20260803);
  for (std::size_t digits : kSizeClasses) {
    for (int trial = 0; trial < kPairsPerClass; ++trial) {
      Ref a = RandomRef(rng, digits, trial % 5 ? 0 : 30);
      // Shift counts hit sub-limb, limb-straddling and multi-limb cases
      // for both widths (the 64-bit limb boundary is the interesting one).
      const int bits = static_cast<int>(rng.Below(32 * digits + 70));
      const BigInt ba = ToBig(a);
      ASSERT_EQ(FromBig(ba << bits), RefShl(a, bits))
          << "digits=" << digits << " bits=" << bits;
      ASSERT_EQ(FromBig(ba >> bits), RefShr(a, bits))
          << "digits=" << digits << " bits=" << bits;
    }
  }
}

TEST(BigIntV2, DivModDifferential) {
  Rng rng(20260804);
  for (std::size_t digits : kSizeClasses) {
    for (int trial = 0; trial < kPairsPerClass; ++trial) {
      const unsigned bias = trial % 3 == 0 ? 40 : 0;
      // Dividend up to twice the class size; divisor up to the class
      // size — exercises every quotient length including 0.
      Ref a = RandomRef(rng, 1 + rng.Below(2 * digits), bias);
      Ref b = RandomRef(rng, 1 + rng.Below(digits), bias);
      if (b.empty()) {
        b.push_back(1 + static_cast<std::uint32_t>(rng.Below(1000)));
      }
      const auto [rq, rr] = RefDivMod(a, b);
      const auto [bq, br] = BigInt::DivMod(ToBig(a), ToBig(b));
      ASSERT_EQ(FromBig(bq), rq) << "digits=" << digits << " trial=" << trial;
      ASSERT_EQ(FromBig(br), rr) << "digits=" << digits << " trial=" << trial;
    }
  }
}

TEST(BigIntV2, KnuthD3D6CornerCases) {
  // Operand patterns chosen to force the Algorithm D corners in the
  // 64-bit engine: saturated trial quotients (qhat clamped to B-1), the
  // D3 correction loop, and the rare D6 add-back row. The classic
  // add-back trigger family: dividend top digits equal to the divisor's,
  // low digits arranged so the 3-by-2 estimate overshoots.
  struct Case {
    Ref a, b;
  };
  std::vector<Case> cases;
  // Saturated prefix: dividend top limbs equal divisor top limbs.
  cases.push_back(
      {Ref{0, 0, 0xffffffffu, 0xffffffffu, 0xfffffffeu, 0xffffffffu},
       Ref{0xffffffffu, 0xffffffffu, 0xffffffffu}});
  // Canonical add-back shapes (Hacker's Delight divmnu family, base
  // 2^32): qhat overestimates by 2.
  cases.push_back(
      {Ref{3, 0, 0x80000000u, 0x7fffffffu}, Ref{1, 0, 0x80000000u}});
  cases.push_back(
      {Ref{0, 0xfffffffeu, 0x80000000u}, Ref{0xffffffffu, 0x80000000u}});
  cases.push_back(
      {Ref{0, 0, 0x00000003u, 0x80000000u}, Ref{1, 0, 0x20000000u}});
  // 64-bit-limb-aligned variants of the same shapes (even digit counts),
  // so the corners trigger in native limb space, not only via odd tops.
  cases.push_back({Ref{0, 0, 0, 0, 0xffffffffu, 0xffffffffu, 0xfffffffeu,
                       0xffffffffu},
                   Ref{0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu}});
  cases.push_back(
      {Ref{3, 0, 0, 0, 0, 0x80000000u, 0xffffffffu, 0x7fffffffu},
       Ref{1, 0, 0, 0x80000000u}});
  // B^k - 1 against near-B^j divisors: every trial quotient saturates.
  for (std::size_t k : {4u, 6u, 8u, 12u}) {
    for (std::size_t j : {2u, 3u, 4u}) {
      if (j >= k) continue;
      Ref a(k, ~std::uint32_t{0});
      Ref b(j, 0);
      b[j - 1] = 0x80000000u;
      cases.push_back({a, b});
      b[0] = 1;
      cases.push_back({std::move(a), std::move(b)});
    }
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& [a, b] = cases[i];
    const auto [rq, rr] = RefDivMod(a, b);
    const auto [bq, br] = BigInt::DivMod(ToBig(a), ToBig(b));
    ASSERT_EQ(FromBig(bq), rq) << "case " << i;
    ASSERT_EQ(FromBig(br), rr) << "case " << i;
    // Round-trip invariant, independently of the reference: a = q*b + r.
    ASSERT_EQ(FromBig(bq * ToBig(b) + br), a) << "case " << i;
  }
}

// --- REDC batch kernel: lane-count equivalence -----------------------------

std::uint64_t NegInv64(std::uint64_t d) {
  std::uint64_t inv = d;
  for (int i = 0; i < 5; ++i) inv *= 2 - d * inv;
  return std::uint64_t{0} - inv;
}

TEST(BigIntV2, RedcBatchLaneTailEquivalence) {
  // Every lane count 1..4 (the full vector group and the 1-3 tails),
  // mixed dividend widths per batch, odd divisors of 2..6 limbs:
  // portable vs dispatched vs BigInt::IsDivisibleBy must agree exactly.
  Rng rng(20260805);
  for (int round = 0; round < 200; ++round) {
    std::vector<BigInt> divisors, dividends;
    for (int lane = 0; lane < 4; ++lane) {
      const std::size_t dl = 2 + rng.Below(5);
      std::vector<std::uint8_t> dbytes(dl * 8);
      for (auto& byte : dbytes) byte = static_cast<std::uint8_t>(rng.Next());
      dbytes[0] |= 1;         // odd
      dbytes.back() |= 0x80;  // full top limb
      BigInt d = BigInt::FromMagnitudeBytes(dbytes);
      const std::size_t kl = 1 + rng.Below(6);
      std::vector<std::uint8_t> kbytes(kl * 8);
      for (auto& byte : kbytes) byte = static_cast<std::uint8_t>(rng.Next());
      BigInt y = d * BigInt::FromMagnitudeBytes(kbytes);
      if (lane % 2 == 1) {
        y += BigInt::FromUint64(1 + rng.Below(1000));  // usually indivisible
      }
      if (y.IsZero()) y = d;
      divisors.push_back(std::move(d));
      dividends.push_back(std::move(y));
    }
    for (std::size_t count = 1; count <= 4; ++count) {
      std::vector<simd::RedcLane> lanes;
      for (std::size_t k = 0; k < count; ++k) {
        lanes.push_back({dividends[k].Magnitude(), divisors[k].Magnitude(),
                         NegInv64(divisors[k].Magnitude()[0])});
      }
      const unsigned portable = simd::RedcDividesBatchPortable(lanes);
      const unsigned dispatched = simd::RedcDividesBatch(lanes);
      ASSERT_EQ(dispatched, portable)
          << "round " << round << " lanes " << count;
      simd::SetActiveIsa(simd::Isa::kScalar);
      const unsigned pinned = simd::RedcDividesBatch(lanes);
      simd::ResetActiveIsa();
      ASSERT_EQ(pinned, portable) << "round " << round << " lanes " << count;
      for (std::size_t k = 0; k < count; ++k) {
        const bool truth = dividends[k].IsDivisibleBy(divisors[k]);
        ASSERT_EQ(((portable >> k) & 1u) != 0, truth)
            << "round " << round << " lane " << k << "/" << count;
      }
    }
  }
}

}  // namespace
}  // namespace primelabel
