// Robustness suite for the socket service layer: request deadlines and
// chunked batch cancellation, bounded backpressure (connection shed,
// oversize lines, idle reaping), graceful drain under a writer storm,
// client-side timeouts/retries, a deterministic socket fault-injection
// sweep through FaultInjectingTransport, and a malformed-wire fuzz
// battery. The ServiceDrain* tests run under ThreadSanitizer via
// scripts/check.sh (tsan leg regex includes 'Chaos|Drain|Deadline').
//
// Like tests/durability_test.cc, the fault sweep honors
// PRIMELABEL_FAULT_SEED so check.sh can walk fault ordinals across runs.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "service/socket_server.h"
#include "service/transport.h"
#include "service/wire.h"
#include "util/deadline.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::string SmallPlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 17;
  return SerializeXml(GeneratePlay("chaos", options));
}

QueryService MakeService(const std::string& dir,
                         QueryService::Options options = {}) {
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return QueryService(std::move(store.value()), options);
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

/// Builds `ISANC <k> <a1> <d1> ...` over every (parent-of-first, element)
/// pairing — big enough to span several deadline-check chunks.
std::string BigIsancLine(const XmlTree& tree, std::size_t pairs) {
  const std::vector<NodeId> elements = NonRootElements(tree);
  std::ostringstream out;
  out << "ISANC " << pairs;
  for (std::size_t i = 0; i < pairs; ++i) {
    out << ' ' << tree.root() << ' ' << elements[i % elements.size()];
  }
  return out.str();
}

int SweepSeed() {
  const char* env = std::getenv("PRIMELABEL_FAULT_SEED");
  return env != nullptr ? std::atoi(env) : 1;
}

/// Raw-socket client for sending bytes the framed SocketClient cannot:
/// garbage, NULs, torn writes, half requests.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() { Close(); }

  bool ok() const { return fd_ >= 0; }

  void Send(const void* data, std::size_t len) {
    if (fd_ < 0) return;
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n <= 0) return;  // Peer closed on us mid-send — that's fine here.
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }
  void Send(const std::string& data) { Send(data.data(), data.size()); }

  /// Reads whatever the server sends until EOF or `window_ms` of silence.
  std::string DrainReplies(int window_ms) {
    std::string out;
    char buf[4096];
    while (fd_ >= 0) {
      pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      if (::poll(&p, 1, window_ms) <= 0) break;
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

// --- Deadlines -----------------------------------------------------------

TEST(ServiceDeadlineWire, PrefixParsingAndPreExpiredRequests) {
  const std::string dir = TempDirPath("svc-deadline-wire");
  QueryService service = MakeService(dir);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  std::optional<Snapshot> snapshot;
  bool done = false;
  ServerGauges gauges;
  WireContext context;
  context.gauges = &gauges;

  // Malformed budgets are rejected without running anything.
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "DEADLINE",
                               &done, &context)
                .rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot,
                               "DEADLINE -5 PING", &done, &context)
                .rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot,
                               "DEADLINE abc PING", &done, &context)
                .rfind("ERR InvalidArgument", 0),
            0u);
  // A generous budget changes nothing.
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot,
                               "DEADLINE 60000 PING", &done, &context),
            "OK PONG");
  // A zero budget is the cheapest cancellation, and it is typed.
  const std::string expired = ExecuteRequestLine(
      service, *session, &snapshot, "DEADLINE 0 SNAP", &done, &context);
  EXPECT_EQ(expired.rfind("ERR DeadlineExceeded", 0), 0u) << expired;
  EXPECT_EQ(gauges.deadline_exceeded.load(), 1u);
  // QUIT is exempt: a client can always leave, budget or none.
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot,
                               "DEADLINE 0 QUIT", &done, &context),
            "OK BYE");
  EXPECT_TRUE(done);
  // The session is not poisoned by a cancelled request.
  done = false;
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "SNAP", &done,
                               &context)
                .rfind("OK ", 0),
            0u);
}

TEST(ServiceDeadlineBatch, ChunkedCancellationAndEquivalence) {
  const std::string dir = TempDirPath("svc-deadline-batch");
  QueryService service = MakeService(dir);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<Snapshot> snap = session->OpenSnapshot();
  ASSERT_TRUE(snap.ok());

  const XmlTree& tree = snap->document().tree();
  const std::vector<NodeId> elements = NonRootElements(tree);
  // Span several kDeadlineCheckChunk chunks.
  const std::size_t n = 5000;
  std::vector<NodeId> ancestors(n, tree.root());
  std::vector<NodeId> descendants(n);
  std::vector<NodeId> candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    descendants[i] = elements[i % elements.size()];
    candidates[i] = elements[(i * 7) % elements.size()];
  }

  // An already-expired deadline cancels before the first chunk, with a
  // progress-bearing message, and discards partial results.
  Result<std::vector<bool>> cancelled = session->IsAncestorBatch(
      snap.value(), ancestors, descendants, Deadline::AfterMs(0));
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(cancelled.status().message().find("0 of 5000"),
            std::string::npos)
      << cancelled.status().ToString();
  Result<std::vector<NodeId>> cancelled_desc = session->SelectDescendants(
      snap.value(), tree.root(), candidates, Deadline::AfterMs(0));
  ASSERT_FALSE(cancelled_desc.ok());
  EXPECT_EQ(cancelled_desc.status().code(), StatusCode::kDeadlineExceeded);
  Result<std::vector<NodeId>> cancelled_anc = session->SelectAncestors(
      snap.value(), descendants[0], candidates, Deadline::AfterMs(0));
  ASSERT_FALSE(cancelled_anc.ok());
  EXPECT_EQ(cancelled_anc.status().code(), StatusCode::kDeadlineExceeded);

  // Chunked execution under a live deadline is bit-identical to the
  // unbounded path (the oracle appends matches in candidate order).
  Result<std::vector<bool>> unbounded =
      session->IsAncestorBatch(snap.value(), ancestors, descendants);
  Result<std::vector<bool>> bounded = session->IsAncestorBatch(
      snap.value(), ancestors, descendants, Deadline::AfterMs(60000));
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(unbounded.value(), bounded.value());
  Result<std::vector<NodeId>> desc_unbounded =
      session->SelectDescendants(snap.value(), tree.root(), candidates);
  Result<std::vector<NodeId>> desc_bounded = session->SelectDescendants(
      snap.value(), tree.root(), candidates, Deadline::AfterMs(60000));
  ASSERT_TRUE(desc_unbounded.ok());
  ASSERT_TRUE(desc_bounded.ok());
  EXPECT_EQ(desc_unbounded.value(), desc_bounded.value());

  // The session survives every cancellation above.
  EXPECT_TRUE(session->OpenSnapshot().ok());
}

TEST(ServiceDeadlineClient, StalledServerYieldsTimeoutNotHang) {
  // A listener that never accepts: the kernel completes the unix-socket
  // handshake into the backlog, so connect and write succeed but no reply
  // ever comes — exactly the wedged-server shape that used to hang
  // Request forever.
  const std::string path = TempDirPath("svc-stalled.sock");
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);

  SocketClient::Options options;
  options.io_timeout_ms = 150;
  options.max_attempts = 1;
  SocketClient client(options);
  ASSERT_TRUE(client.Connect(path).ok());
  const auto start = std::chrono::steady_clock::now();
  Result<std::string> reply = client.Request("PING");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  EXPECT_LT(elapsed.count(), 5000) << "timeout did not bound the wait";

  // A per-request deadline tighter than io_timeout also wins.
  SocketClient::Options generous;
  generous.io_timeout_ms = 60000;
  generous.max_attempts = 1;
  SocketClient bounded(generous);
  ASSERT_TRUE(bounded.Connect(path).ok());
  Result<std::string> tight =
      bounded.Request("PING", Deadline::AfterMs(100));
  ASSERT_FALSE(tight.ok());
  EXPECT_EQ(tight.status().code(), StatusCode::kDeadlineExceeded);

  ::close(listen_fd);
  ::unlink(path.c_str());

  // With nothing listening at all, connect fails fast and typed instead
  // of hanging.
  SocketClient::Options refused;
  refused.max_attempts = 1;
  refused.connect_timeout_ms = 200;
  SocketClient dead(refused);
  Status connect = dead.Connect(path);
  ASSERT_FALSE(connect.ok());
  EXPECT_EQ(connect.code(), StatusCode::kUnavailable)
      << connect.ToString();
}

// --- Backpressure --------------------------------------------------------

TEST(ServiceChaosBackpressure, ShedsBeyondConnectionCap) {
  const std::string dir = TempDirPath("svc-shed");
  const std::string socket_path = TempDirPath("svc-shed.sock");
  QueryService service = MakeService(dir);
  SocketServer::Options options;
  options.max_connections = 1;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(socket_path).ok());

  SocketClient::Options one_shot;
  one_shot.max_attempts = 1;
  SocketClient first(one_shot);
  ASSERT_TRUE(first.Connect(socket_path).ok());
  ASSERT_TRUE(first.Request("PING").ok());

  // The second connection is shed at accept with one typed line (or the
  // close wins the race and the request fails typed — never a hang).
  SocketClient second(one_shot);
  ASSERT_TRUE(second.Connect(socket_path).ok());
  Result<std::string> reply = second.Request("PING");
  if (reply.ok()) {
    EXPECT_EQ(reply->rfind("ERR ResourceExhausted", 0), 0u) << *reply;
  }
  EXPECT_GE(server.stats().shed, 1u);

  // The admitted connection is untouched, and its STATS line reports the
  // shed through the wire.
  Result<std::string> stats = first.Request("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find(" SHED 1"), std::string::npos) << *stats;
  first.Close();
  server.Stop();
}

TEST(ServiceChaosBackpressure, OversizeLineAnsweredAndClosed) {
  const std::string dir = TempDirPath("svc-oversize");
  const std::string socket_path = TempDirPath("svc-oversize.sock");
  QueryService service = MakeService(dir);
  SocketServer::Options options;
  options.max_line_bytes = 1024;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(socket_path).ok());

  RawConnection conn(socket_path);
  ASSERT_TRUE(conn.ok());
  conn.Send(std::string(4096, 'A'));  // No newline: pure buffer growth.
  const std::string replies = conn.DrainReplies(2000);
  EXPECT_NE(replies.find("ERR InvalidArgument"), std::string::npos)
      << replies;
  EXPECT_GE(server.stats().oversize_rejected, 1u);

  // The server is fine; a well-formed client works.
  SocketClient client;
  ASSERT_TRUE(client.Connect(socket_path).ok());
  Result<std::string> pong = client.Request("PING");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "OK PONG");
  client.Close();
  server.Stop();
}

TEST(ServiceChaosBackpressure, IdleConnectionsAreReaped) {
  const std::string dir = TempDirPath("svc-idle");
  const std::string socket_path = TempDirPath("svc-idle.sock");
  QueryService service = MakeService(dir);
  SocketServer::Options options;
  options.idle_timeout_ms = 100;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(socket_path).ok());

  SocketClient::Options one_shot;
  one_shot.max_attempts = 1;
  SocketClient client(one_shot);
  ASSERT_TRUE(client.Connect(socket_path).ok());
  ASSERT_TRUE(client.Request("PING").ok());

  // Go quiet past the idle budget; the server closes our side.
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(5000);
  while (server.stats().idle_reaped == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().idle_reaped, 1u);
  Result<std::string> reply = client.Request("PING");
  EXPECT_FALSE(reply.ok());  // Reaped: no retry (max_attempts = 1).
  server.Stop();
}

// --- Fault injection -----------------------------------------------------

TEST(ServiceChaosInjector, FaultsFireAtOrdinalsAndDisarm) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FaultInjectingTransport fi(DefaultTransport());

  // A read-only fault armed at op 1 waits for the first *eligible* op:
  // the write at op 1 passes through untouched, the read at op 2 fires.
  FaultInjectingTransport::Fault fault;
  fault.at = 1;
  fault.kind = FaultInjectingTransport::FaultKind::kShortRead;
  fi.Arm(fault);
  const char payload[] = "abcdef";
  IoResult wrote = fi.Write(fds[0], payload, sizeof payload - 1, 1000);
  EXPECT_EQ(wrote.event, IoEvent::kOk);
  EXPECT_EQ(wrote.bytes, sizeof payload - 1);
  char buf[16];
  IoResult read = fi.Read(fds[1], buf, sizeof buf, 1000);
  EXPECT_EQ(read.event, IoEvent::kOk);
  EXPECT_EQ(read.bytes, 1u) << "short-read fault did not cap the read";
  EXPECT_EQ(fi.ops(), 2u);
  EXPECT_EQ(fi.faults_fired(), 1u);
  // Transient: the rest of the payload arrives whole.
  read = fi.Read(fds[1], buf, sizeof buf, 1000);
  EXPECT_EQ(read.event, IoEvent::kOk);
  EXPECT_EQ(read.bytes, sizeof payload - 2);

  // A stall under a poll timeout reports kTimeout without sleeping.
  fi.Reset();
  fault.at = 1;
  fault.kind = FaultInjectingTransport::FaultKind::kStall;
  fi.Arm(fault);
  const auto start = std::chrono::steady_clock::now();
  read = fi.Read(fds[1], buf, sizeof buf, 5000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(read.event, IoEvent::kTimeout);
  EXPECT_LT(elapsed.count(), 1000) << "stall fault slept for real";

  // A reset fault tears the connection down for both sides.
  fi.Reset();
  fault.kind = FaultInjectingTransport::FaultKind::kReset;
  fi.Arm(fault);
  wrote = fi.Write(fds[0], payload, sizeof payload - 1, 1000);
  EXPECT_EQ(wrote.event, IoEvent::kReset);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServiceChaosSweep, SeededFaultSweepNeverWedgesTheServer) {
  const std::string dir = TempDirPath("svc-sweep");
  const std::string socket_path = TempDirPath("svc-sweep.sock");
  QueryService service = MakeService(dir);

  FaultInjectingTransport injected(DefaultTransport());
  SocketServer::Options options;
  options.transport = &injected;
  options.write_timeout_ms = 300;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(socket_path).ok());

  const int seed = SweepSeed();
  using FaultKind = FaultInjectingTransport::FaultKind;
  const FaultKind kinds[] = {FaultKind::kShortRead, FaultKind::kShortWrite,
                             FaultKind::kStall, FaultKind::kReset};

  // Clients retry reset/unavailable, so most requests heal; the
  // invariants are the acceptance bar: every request ends in a reply or
  // a typed error (never a crash or a wedge), only the injected
  // connection is affected, and after clearing the fault a fresh clean
  // request succeeds.
  SocketClient::Options resilient;
  resilient.io_timeout_ms = 2000;
  resilient.max_attempts = 3;
  resilient.base_backoff_ms = 5;
  for (const FaultKind kind : kinds) {
    for (int k = 0; k < 10; ++k) {
      const std::uint64_t ordinal =
          static_cast<std::uint64_t>(seed + k * k);
      injected.Reset();
      FaultInjectingTransport::Fault fault;
      fault.at = ordinal;
      fault.kind = kind;
      fault.transient = true;
      injected.Arm(fault);

      SocketClient client(resilient);
      ASSERT_TRUE(client.Connect(socket_path).ok());
      for (const char* request : {"PING", "SNAP", "XPATH //speech"}) {
        Result<std::string> reply = client.Request(request);
        if (!reply.ok()) {
          const StatusCode code = reply.status().code();
          ASSERT_TRUE(code == StatusCode::kUnavailable ||
                      code == StatusCode::kDeadlineExceeded ||
                      code == StatusCode::kIoError)
              << "untyped failure under " << static_cast<int>(kind)
              << " at ordinal " << ordinal << ": "
              << reply.status().ToString();
        }
      }
      client.Close();

      // Clean-slate probe: the server must still serve perfectly.
      injected.Reset();
      SocketClient probe(resilient);
      ASSERT_TRUE(probe.Connect(socket_path).ok())
          << "server wedged after " << static_cast<int>(kind)
          << " at ordinal " << ordinal;
      Result<std::string> pong = probe.Request("PING");
      ASSERT_TRUE(pong.ok()) << pong.status().ToString();
      EXPECT_EQ(*pong, "OK PONG");
      Result<std::string> snap = probe.Request("SNAP");
      ASSERT_TRUE(snap.ok());
      EXPECT_EQ(snap->rfind("OK ", 0), 0u) << *snap;
      probe.Close();
    }
  }
  server.Stop();
  EXPECT_TRUE(server.stats().accepted >= 80u)
      << "sweep exercised fewer connections than expected";
}

TEST(ServiceChaosFuzz, MalformedWireBatteryNeverKillsTheServer) {
  const std::string dir = TempDirPath("svc-fuzz");
  const std::string socket_path = TempDirPath("svc-fuzz.sock");
  QueryService service = MakeService(dir);
  SocketServer::Options options;
  options.max_line_bytes = 4096;
  options.write_timeout_ms = 500;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start(socket_path).ok());

  // 1. Deterministic random bytes, newlines included, several rounds.
  std::mt19937 rng(20260807);
  for (int round = 0; round < 8; ++round) {
    RawConnection conn(socket_path);
    ASSERT_TRUE(conn.ok());
    std::string noise(512, '\0');
    for (char& c : noise) c = static_cast<char>(rng() & 0xff);
    conn.Send(noise);
    conn.Send("\n");
    conn.DrainReplies(50);
  }

  // 2. Embedded NULs inside otherwise plausible verbs.
  {
    RawConnection conn(socket_path);
    ASSERT_TRUE(conn.ok());
    const char nul_ping[] = "PI\0NG\nXPATH \0//speech\nISANC 1 \0 2\n";
    conn.Send(nul_ping, sizeof nul_ping - 1);
    const std::string replies = conn.DrainReplies(200);
    EXPECT_NE(replies.find("ERR"), std::string::npos) << replies;
  }

  // 3. Oversized line: one typed rejection, connection closed, bounded
  //    memory.
  {
    RawConnection conn(socket_path);
    ASSERT_TRUE(conn.ok());
    conn.Send(std::string(32 * 1024, 'Z'));
    const std::string replies = conn.DrainReplies(2000);
    EXPECT_NE(replies.find("ERR InvalidArgument"), std::string::npos)
        << replies;
  }

  // 4. Torn multi-line writes: two requests delivered across three
  //    segments with pauses — reassembly must yield exactly two replies.
  {
    RawConnection conn(socket_path);
    ASSERT_TRUE(conn.ok());
    conn.Send("SN");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    conn.Send("AP\nPI");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    conn.Send("NG\n");
    const std::string replies = conn.DrainReplies(500);
    EXPECT_NE(replies.find("OK "), std::string::npos) << replies;
    EXPECT_NE(replies.find("OK PONG"), std::string::npos) << replies;
  }

  // 5. Mid-request disconnect: half a line, then gone.
  {
    RawConnection conn(socket_path);
    ASSERT_TRUE(conn.ok());
    conn.Send("ISANC 3 1 2");
    conn.Close();
  }

  // After the whole battery the server serves a pristine session.
  SocketClient client;
  ASSERT_TRUE(client.Connect(socket_path).ok());
  for (const char* request : {"PING", "SNAP", "XPATH //speech", "STATS"}) {
    Result<std::string> reply = client.Request(request);
    ASSERT_TRUE(reply.ok()) << request << ": " << reply.status().ToString();
    EXPECT_EQ(reply->rfind("OK", 0), 0u) << request << " -> " << *reply;
  }
  client.Close();
  server.Stop();
}

// --- Graceful drain ------------------------------------------------------

TEST(ServiceDrainIdle, DrainWithIdleClientsCompletesCleanly) {
  const std::string dir = TempDirPath("svc-drain-idle");
  const std::string socket_path = TempDirPath("svc-drain-idle.sock");
  QueryService service = MakeService(dir);
  SocketServer server(&service);
  ASSERT_TRUE(server.Start(socket_path).ok());

  std::vector<std::unique_ptr<SocketClient>> idlers;
  for (int i = 0; i < 3; ++i) {
    auto client = std::make_unique<SocketClient>();
    ASSERT_TRUE(client->Connect(socket_path).ok());
    ASSERT_TRUE(client->Request("PING").ok());
    idlers.push_back(std::move(client));
  }
  EXPECT_EQ(server.live_connections(), 3u);

  // Idle connections notice the draining flag within a poll slice; no
  // force-closes needed.
  Status drained = server.Drain(std::chrono::milliseconds(3000));
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(server.stats().forced_closes, 0u);
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(fs::exists(socket_path));
  // Drain is terminal; Stop afterwards is a harmless no-op.
  server.Stop();
}

TEST(ServiceDrainStorm, DrainCompletesInflightUnderWriterStorm) {
  const std::string dir = TempDirPath("svc-drain-storm");
  const std::string socket_path = TempDirPath("svc-drain-storm.sock");
  QueryService service = MakeService(dir);
  DurableDocumentStore& store = service.store();
  SocketServer server(&service);
  ASSERT_TRUE(server.Start(socket_path).ok());

  // Built from the initial tree, before the writer starts: the live tree
  // may only be read from the writer thread once it is running. Appends
  // never invalidate existing node ids, so the line stays well-formed.
  const std::string big_isanc = BigIsancLine(store.document().tree(), 3000);

  // Writer storm: structural appends + periodic checkpoints while the
  // readers hammer the socket front end.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    std::mt19937 rng(41);
    int i = 0;
    while (!stop_writer.load()) {
      std::vector<NodeId> elements = NonRootElements(store.document().tree());
      ASSERT_TRUE(
          store.AppendChild(elements[rng() % elements.size()], "w").ok());
      if (++i % 16 == 0) {
        ASSERT_TRUE(store.Checkpoint().ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int c = 0; c < 3; ++c) {
    readers.emplace_back([&] {
      SocketClient::Options one_shot;
      one_shot.max_attempts = 1;
      one_shot.io_timeout_ms = 5000;
      SocketClient client(one_shot);
      if (!client.Connect(socket_path).ok()) return;
      if (!client.Request("SNAP").ok()) return;
      while (!stop_readers.load()) {
        Result<std::string> reply = client.Request("XPATH //speech");
        if (!reply.ok()) return;  // Drain closed us between requests.
        if (reply->rfind("OK", 0) == 0) served.fetch_add(1);
      }
    });
  }

  // Let the storm develop, then prove an oversized batch under a spent
  // budget cancels instead of stalling the drain window.
  while (served.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    SocketClient doomed;
    ASSERT_TRUE(doomed.Connect(socket_path).ok());
    ASSERT_TRUE(doomed.Request("SNAP").ok());
    Result<std::string> reply = doomed.Request("DEADLINE 0 " + big_isanc);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->rfind("ERR DeadlineExceeded", 0), 0u) << *reply;
    doomed.Close();
  }

  // Drain while readers are still in flight: everything currently
  // executing finishes and is answered; nothing new is admitted.
  Status drained = server.Drain(std::chrono::milliseconds(5000));
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_FALSE(server.running());

  stop_readers.store(true);
  for (std::thread& t : readers) t.join();
  stop_writer.store(true);
  writer.join();

  EXPECT_GE(served.load(), 20u);
  const SocketServer::Stats stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.forced_closes, 0u)
      << "drain had to force-close in-flight readers";
  EXPECT_GE(stats.deadline_exceeded, 1u);
}

}  // namespace
}  // namespace primelabel
