// Service-layer suite: QueryService sessions reading epoch-pinned
// snapshots (with shared materialized views) while the single writer
// commits and checkpoints. The Concurrent* tests run under
// ThreadSanitizer via scripts/check.sh (tsan leg matches
// 'Parallel|Epoch|Concurrent|Service|Snapshot').

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "service/socket_server.h"
#include "service/view_cache.h"
#include "service/wire.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::string StateDigest(const LabeledDocument& doc) {
  std::ostringstream out;
  doc.tree().Preorder([&](NodeId id, int depth) {
    out << depth << '|' << doc.tree().name(id) << '|'
        << doc.scheme().structure().self_label(id) << '|'
        << doc.scheme().structure().label(id).ToHexString() << '|'
        << doc.scheme().OrderOf(id) << '\n';
  });
  return out.str();
}

std::string SmallPlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 17;
  return SerializeXml(GeneratePlay("served", options));
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

QueryService MakeService(const std::string& dir,
                         QueryService::Options options = {}) {
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return QueryService(std::move(store.value()), options);
}

// --- Acceptance: concurrent sessions + writer, shared views --------------

TEST(SnapshotServiceConcurrent, SessionsShareViewsWhileWriterCommits) {
  const std::string dir = TempDirPath("svc-concurrent");
  QueryService service = MakeService(dir);
  DurableDocumentStore& store = service.store();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    std::mt19937 rng(31);
    for (int i = 0; i < 48; ++i) {
      std::vector<NodeId> elements = NonRootElements(store.document().tree());
      ASSERT_TRUE(
          store.AppendChild(elements[rng() % elements.size()], "w").ok());
      if (i % 12 == 11) {
        ASSERT_TRUE(store.Checkpoint().ok());
      }
    }
    ASSERT_TRUE(store.Flush().ok());
    done.store(true);
  });

  std::vector<std::thread> sessions;
  for (int s = 0; s < 4; ++s) {
    sessions.emplace_back([&, s] {
      Result<Session> session = service.OpenSession();
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      // Keep reading through the storm, plus a couple of spins after the
      // writer quiesces so every session lands on the writer's final
      // point — those final opens all share one materialization.
      int post_done = 0;
      while (post_done < 3) {
        if (done.load()) ++post_done;
        Result<Snapshot> snap = session->OpenSnapshot();
        ASSERT_TRUE(snap.ok())
            << "session " << s << ": " << snap.status().ToString();
        reads.fetch_add(1);
        Result<std::vector<NodeId>> speeches = snap->Query("//speech");
        ASSERT_TRUE(speeches.ok()) << speeches.status().ToString();
        EXPECT_FALSE(speeches->empty());
        // Two independent opens of the quiesced point agree exactly —
        // whether the second ride the shared view or re-materializes
        // from disk, the answers must be bit-identical.
        if (post_done == 2) {
          Result<Snapshot> again = session->OpenSnapshot();
          ASSERT_TRUE(again.ok()) << again.status().ToString();
          reads.fetch_add(1);
          EXPECT_EQ(StateDigest(again->document()),
                    StateDigest(snap->document()));
          std::vector<NodeId> fresh = again->Query("//speech").value();
          EXPECT_EQ(fresh, *speeches);
        }
      }
      session->Close();
    });
  }

  writer.join();
  for (std::thread& t : sessions) t.join();

  // Views were shared: fewer materializations than snapshot opens (the
  // post-quiescence opens of all four sessions alone collapse onto one
  // materialization of the final point).
  const EpochViewCache::Stats stats = service.view_cache().stats();
  EXPECT_EQ(stats.hits + stats.misses, reads.load());
  EXPECT_LT(stats.misses, reads.load())
      << "every open re-materialized; view sharing is broken";
  EXPECT_GT(stats.hits, 0u);
}

TEST(SnapshotServiceConcurrent, ManySessionsOneQuiescentPointOneBuild) {
  const std::string dir = TempDirPath("svc-quiescent");
  QueryService service = MakeService(dir);

  // No writer: every session pins the same (epoch, bytes) point, so the
  // whole fleet costs exactly one materialization.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int s = 0; s < 6; ++s) {
    threads.emplace_back([&] {
      Result<Session> session = service.OpenSession();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 5; ++i) {
        Result<Snapshot> snap = session->OpenSnapshot();
        if (!snap.ok() || !snap->Query("//scene").ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const EpochViewCache::Stats stats = service.view_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 29u);
}

// --- Cache lifecycle ------------------------------------------------------

TEST(SnapshotServiceCache, StaleEpochViewsEvictedOnCheckpoint) {
  const std::string dir = TempDirPath("svc-evict-epoch");
  QueryService service = MakeService(dir);
  DurableDocumentStore& store = service.store();
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());

  Result<Snapshot> snap = session->OpenSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(service.view_cache().size(), 1u);

  // The checkpoint publishes a new epoch; the retirement listener sweeps
  // the epoch-0 view out of the cache even though the snapshot (and its
  // pin) are still alive — the shared_ptr keeps the view itself valid.
  std::vector<NodeId> scenes = store.Query("//scene").value();
  ASSERT_TRUE(store.AppendChild(scenes[0], "n").ok());
  ASSERT_TRUE(store.Checkpoint().ok());
  EXPECT_EQ(service.view_cache().size(), 0u);
  EXPECT_EQ(service.view_cache().stats().evictions, 1u);
  EXPECT_TRUE(snap->valid());
  EXPECT_TRUE(snap->Query("//scene").ok());
}

TEST(SnapshotServiceCache, LruBoundsIntraEpochChurn) {
  const std::string dir = TempDirPath("svc-evict-lru");
  QueryService::Options options;
  options.view_cache_capacity = 2;
  QueryService service = MakeService(dir, options);
  DurableDocumentStore& store = service.store();
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());

  // Each committed mutation advances journal_bytes, minting a fresh cache
  // key within the same epoch; capacity 2 caps the entries.
  std::vector<NodeId> scenes = store.Query("//scene").value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.AppendChild(scenes[0], "n").ok());
    ASSERT_TRUE(store.Flush().ok());
    Result<Snapshot> snap = session->OpenSnapshot();
    ASSERT_TRUE(snap.ok());
  }
  EXPECT_LE(service.view_cache().size(), 2u);
  EXPECT_EQ(service.view_cache().stats().misses, 5u);
  EXPECT_GE(service.view_cache().stats().evictions, 3u);
}

// --- Admission control ----------------------------------------------------

TEST(SnapshotServiceAdmission, SessionCapRejectsTyped) {
  const std::string dir = TempDirPath("svc-admit-sessions");
  QueryService::Options options;
  options.max_sessions = 2;
  QueryService service = MakeService(dir, options);

  Result<Session> a = service.OpenSession();
  Result<Session> b = service.OpenSession();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<Session> c = service.OpenSession();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

  // Closing a session frees its slot.
  a->Close();
  Result<Session> d = service.OpenSession();
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(service.counters().sessions_rejected, 1u);
}

TEST(SnapshotServiceAdmission, QuotaRejectionLeavesSessionUsable) {
  const std::string dir = TempDirPath("svc-admit-quota");
  QueryService::Options options;
  options.session_request_quota = 3;
  QueryService service = MakeService(dir, options);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());

  Result<Snapshot> snap = session->OpenSnapshot();       // request 1
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(session->Query(*snap, "//speech").ok());   // request 2
  ASSERT_TRUE(session->Query(*snap, "//scene").ok());    // request 3

  // Quota exhausted: typed rejection, not corruption.
  Result<std::vector<NodeId>> rejected = session->Query(*snap, "//line");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session->served(), 3u);
  EXPECT_EQ(session->rejected(), 1u);

  // The open snapshot is untouched by the rejection and still answers
  // directly (Snapshot::Query is not admission-gated).
  EXPECT_TRUE(snap->Query("//line").ok());

  // A fresh session against the same service works.
  Result<Session> fresh = service.OpenSession();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->OpenSnapshot().ok());
}

TEST(SnapshotServiceAdmission, BatchVerbsCountAgainstQuota) {
  const std::string dir = TempDirPath("svc-admit-batch");
  QueryService::Options options;
  options.session_request_quota = 2;
  QueryService service = MakeService(dir, options);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<Snapshot> snap = session->OpenSnapshot();  // request 1
  ASSERT_TRUE(snap.ok());

  std::vector<NodeId> speeches = snap->Query("//speech").value();
  std::vector<NodeId> acts = snap->Query("//act").value();
  ASSERT_FALSE(speeches.empty());
  ASSERT_FALSE(acts.empty());

  Result<std::vector<NodeId>> descendants =
      session->SelectDescendants(*snap, acts[0], speeches);  // request 2
  ASSERT_TRUE(descendants.ok());
  Result<std::vector<NodeId>> ancestors =
      session->SelectAncestors(*snap, speeches[0], acts);  // rejected
  ASSERT_FALSE(ancestors.ok());
  EXPECT_EQ(ancestors.status().code(), StatusCode::kResourceExhausted);
}

// --- Session batch entry points agree with the frozen oracle -------------

TEST(SnapshotServiceBatch, BatchAnswersMatchScalarOracle) {
  const std::string dir = TempDirPath("svc-batch");
  QueryService service = MakeService(dir);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  Result<Snapshot> snap = session->OpenSnapshot();
  ASSERT_TRUE(snap.ok());

  const std::vector<NodeId> acts = snap->Query("//act").value();
  const std::vector<NodeId> speeches = snap->Query("//speech").value();
  ASSERT_GE(acts.size(), 2u);
  ASSERT_GE(speeches.size(), 4u);

  std::vector<NodeId> ancestors, descendants;
  for (NodeId a : acts) {
    for (NodeId s : speeches) {
      ancestors.push_back(a);
      descendants.push_back(s);
    }
  }
  Result<std::vector<bool>> bits =
      session->IsAncestorBatch(*snap, ancestors, descendants);
  ASSERT_TRUE(bits.ok());
  for (std::size_t i = 0; i < bits->size(); ++i) {
    EXPECT_EQ((*bits)[i],
              snap->oracle().IsAncestor(ancestors[i], descendants[i]));
  }

  Result<std::vector<NodeId>> selected =
      session->SelectDescendants(*snap, acts[0], speeches);
  ASSERT_TRUE(selected.ok());
  for (NodeId s : speeches) {
    const bool in = std::find(selected->begin(), selected->end(), s) !=
                    selected->end();
    EXPECT_EQ(in, snap->oracle().IsAncestor(acts[0], s));
  }

  Result<std::vector<NodeId>> up =
      session->SelectAncestors(*snap, speeches[0], acts);
  ASSERT_TRUE(up.ok());
  ASSERT_EQ(up->size(), 1u);
  EXPECT_TRUE(snap->oracle().IsAncestor((*up)[0], speeches[0]));
}

// --- Wire protocol over a real socket ------------------------------------

TEST(SnapshotServiceWire, RequestLineBatteryAndErrors) {
  const std::string dir = TempDirPath("svc-wire");
  QueryService service = MakeService(dir);
  Result<Session> session = service.OpenSession();
  ASSERT_TRUE(session.ok());
  std::optional<Snapshot> snapshot;
  bool done = false;

  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "PING", &done),
            "OK PONG");
  // Structural verbs before SNAP are typed errors.
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "XPATH //a",
                               &done)
                .rfind("ERR InvalidArgument", 0),
            0u);
  std::string snap_reply =
      ExecuteRequestLine(service, *session, &snapshot, "SNAP", &done);
  EXPECT_EQ(snap_reply.rfind("OK ", 0), 0u);
  ASSERT_TRUE(snapshot.has_value());

  const std::string xpath_reply = ExecuteRequestLine(
      service, *session, &snapshot, "XPATH //speech", &done);
  EXPECT_EQ(xpath_reply.rfind("OK ", 0), 0u);
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "BOGUS", &done)
                .rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "ISANC 2 1",
                               &done)
                .rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_FALSE(done);
  EXPECT_EQ(ExecuteRequestLine(service, *session, &snapshot, "QUIT", &done),
            "OK BYE");
  EXPECT_TRUE(done);
}

TEST(SnapshotServiceWire, SocketServerServesConcurrentClients) {
  const std::string dir = TempDirPath("svc-socket");
  const std::string socket_path = TempDirPath("svc-socket.sock");
  QueryService service = MakeService(dir);
  SocketServer server(&service);
  ASSERT_TRUE(server.Start(socket_path).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      SocketClient client;
      if (!client.Connect(socket_path).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (const char* request :
           {"PING", "SNAP", "XPATH //speech", "STATS", "QUIT"}) {
        Result<std::string> reply = client.Request(request);
        if (!reply.ok() || reply->rfind("OK", 0) != 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
  EXPECT_FALSE(fs::exists(socket_path));
}

TEST(SnapshotServiceWire, SessionCapClosesExtraConnections) {
  const std::string dir = TempDirPath("svc-socket-cap");
  const std::string socket_path = TempDirPath("svc-socket-cap.sock");
  QueryService::Options options;
  options.max_sessions = 1;
  QueryService service = MakeService(dir, options);
  SocketServer server(&service);
  ASSERT_TRUE(server.Start(socket_path).ok());

  SocketClient first;
  ASSERT_TRUE(first.Connect(socket_path).ok());
  ASSERT_TRUE(first.Request("PING").ok());

  SocketClient second;
  ASSERT_TRUE(second.Connect(socket_path).ok());
  Result<std::string> reply = second.Request("PING");
  // The rejected connection got one ERR line (read before close) or was
  // closed outright, depending on write/read interleaving.
  if (reply.ok()) {
    EXPECT_EQ(reply->rfind("ERR ResourceExhausted", 0), 0u);
  }

  // The admitted connection is unaffected.
  Result<std::string> still = first.Request("SNAP");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->rfind("OK ", 0), 0u);
}

}  // namespace
}  // namespace primelabel
