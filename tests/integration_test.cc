// End-to-end integration tests: generate -> serialize -> parse -> label ->
// query, with the label-based evaluator validated against the tree-walking
// oracle for every scheme, on fixed and randomized queries, before and
// after document mutations.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/decomposed_prime_scheme.h"
#include "core/ordered_prime_scheme.h"
#include "labeling/dewey.h"
#include "labeling/interval.h"
#include "labeling/prefix.h"
#include "labeling/prime_optimized.h"
#include "store/label_table.h"
#include "util/rng.h"
#include "xml/datasets.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"
#include "xml/stats.h"
#include "xpath/evaluator.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace primelabel {
namespace {

/// Wires up a scheme + order provider for the query pipeline. Schemes
/// without an order-encoding label use the preorder rank a relational
/// mapping would store alongside the label.
struct Pipeline {
  std::unique_ptr<LabelingScheme> scheme;
  std::unique_ptr<LabelTable> table;
  std::vector<std::uint64_t> rank;
  std::unique_ptr<SchemeOracle> adapter;
  QueryContext ctx;

  void Build(const XmlTree& tree, const std::string& which) {
    table = std::make_unique<LabelTable>(tree);
    rank.assign(tree.arena_size(), 0);
    std::uint64_t counter = 0;
    tree.Preorder([&](NodeId id, int) {
      rank[static_cast<std::size_t>(id)] = counter++;
    });
    if (which == "interval") {
      auto interval = std::make_unique<IntervalScheme>();
      interval->LabelTree(tree);
      IntervalScheme* raw = interval.get();
      adapter = std::make_unique<SchemeOracle>(
          raw, [raw](NodeId id) { return raw->low(id); });
      ctx.oracle = adapter.get();
      scheme = std::move(interval);
    } else if (which == "prime-ordered") {
      auto prime = std::make_unique<OrderedPrimeScheme>();
      prime->LabelTree(tree);
      // The ordered prime scheme is itself an oracle — no adapter.
      ctx.oracle = prime.get();
      scheme = std::move(prime);
    } else {
      if (which == "prefix-2") {
        scheme = std::make_unique<PrefixScheme>(PrefixVariant::kBinary);
      } else if (which == "prime-decomposed") {
        scheme = std::make_unique<DecomposedPrimeScheme>(3);
      } else if (which == "dewey") {
        scheme = std::make_unique<DeweyScheme>();
      } else {
        scheme = std::make_unique<PrimeOptimizedScheme>();
      }
      scheme->LabelTree(tree);
      adapter = std::make_unique<SchemeOracle>(scheme.get(), [this](NodeId id) {
        return rank[static_cast<std::size_t>(id)];
      });
      ctx.oracle = adapter.get();
    }
    ctx.table = table.get();
  }
};

using SchemeName = std::string;

class PipelineTest : public ::testing::TestWithParam<SchemeName> {};

TEST_P(PipelineTest, FixedQueriesMatchOracleOnGeneratedPlay) {
  PlayOptions options;
  options.acts = 4;
  options.scenes_per_act = 3;
  options.min_speeches_per_scene = 3;
  options.max_speeches_per_scene = 8;
  options.seed = 11;
  XmlTree tree = GeneratePlay("t", options);

  Pipeline pipeline;
  pipeline.Build(tree, GetParam());
  XPathEvaluator evaluator(&pipeline.ctx);

  for (const char* text : {
           "/play//act",
           "/play/act/scene",
           "/play//act[2]",
           "/play//scene[3]",
           "/play//act[2]//Following::scene",
           "/play//act[3]//Preceding::act",
           "/play//scene[2]//Following-sibling::scene",
           "/play//act[2]//Preceding-sibling::act[1]",
           "/play//speech[1]/speaker",
           "/play/*",
           "//speech[5]",
           "//speaker[@name='HAMLET']",
           "//speech/speaker[@name='OPHELIA']",
       }) {
    Result<XPathQuery> query = ParseXPath(text);
    ASSERT_TRUE(query.ok()) << text;
    std::vector<NodeId> expected = EvaluateXPathOnTree(tree, query.value());
    std::vector<NodeId> actual = evaluator.Evaluate(query.value());
    EXPECT_EQ(actual, expected) << GetParam() << ": " << text;
  }
}

TEST_P(PipelineTest, RandomQueriesMatchOracleOnRandomTrees) {
  Rng rng(4242);
  const char* tags[] = {"a", "b", "c", "d", "e", "f", "*"};
  for (int doc = 0; doc < 4; ++doc) {
    RandomTreeOptions options;
    options.node_count = 250;
    options.max_depth = 6;
    options.max_fanout = 6;
    options.seed = static_cast<std::uint64_t>(doc) * 13 + 5;
    XmlTree tree = GenerateRandomTree(options);
    Pipeline pipeline;
    pipeline.Build(tree, GetParam());
    XPathEvaluator evaluator(&pipeline.ctx);

    for (int q = 0; q < 40; ++q) {
      XPathQuery query;
      int steps = 1 + static_cast<int>(rng.Below(3));
      for (int s = 0; s < steps; ++s) {
        XPathStep step;
        if (s == 0) {
          step.axis = XPathAxis::kDescendant;
        } else {
          switch (rng.Below(8)) {
            case 0: step.axis = XPathAxis::kChild; break;
            case 1: step.axis = XPathAxis::kDescendant; break;
            case 2: step.axis = XPathAxis::kFollowing; break;
            case 3: step.axis = XPathAxis::kPreceding; break;
            case 4: step.axis = XPathAxis::kFollowingSibling; break;
            case 5: step.axis = XPathAxis::kPrecedingSibling; break;
            case 6: step.axis = XPathAxis::kParent; break;
            default: step.axis = XPathAxis::kAncestor; break;
          }
        }
        step.name_test = tags[rng.Below(sizeof(tags) / sizeof(tags[0]))];
        if (rng.Chance(30)) {
          step.position = 1 + static_cast<int>(rng.Below(4));
        }
        query.steps.push_back(std::move(step));
      }
      std::vector<NodeId> expected = EvaluateXPathOnTree(tree, query);
      std::vector<NodeId> actual = evaluator.Evaluate(query);
      ASSERT_EQ(actual, expected)
          << GetParam() << " doc " << doc << ": " << query.ToString();
    }
  }
}

TEST_P(PipelineTest, SerializeParseRelabelPreservesAnswers) {
  // Round-trip the document through text and check a query answers the
  // same (by tag path, since node ids differ across trees).
  DatasetSpec spec = NiagaraCorpusSpecs()[1];  // D2 Movie
  XmlTree original = GenerateDataset(spec);
  std::string xml = SerializeXml(original);
  Result<XmlTree> reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->node_count(), original.node_count());

  Pipeline p1, p2;
  p1.Build(original, GetParam());
  p2.Build(*reparsed, GetParam());
  for (const char* text :
       {"/movies//movie[3]", "//movie/cast/actor", "//movie[2]//Following::title"}) {
    Result<XPathQuery> query = ParseXPath(text);
    ASSERT_TRUE(query.ok());
    std::vector<NodeId> r1 = XPathEvaluator(&p1.ctx).Evaluate(query.value());
    std::vector<NodeId> r2 = XPathEvaluator(&p2.ctx).Evaluate(query.value());
    EXPECT_EQ(r1.size(), r2.size()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PipelineTest,
    ::testing::Values("interval", "prefix-2", "dewey", "prime",
                      "prime-ordered", "prime-decomposed"),
    [](const ::testing::TestParamInfo<SchemeName>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IntegrationMutation, QueriesStayCorrectUnderOrderedChurn) {
  // Mutate a play with order-sensitive insertions through the ordered
  // prime scheme, rebuilding the table after each round and comparing the
  // evaluator against the oracle.
  PlayOptions options;
  options.acts = 3;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 4;
  options.seed = 31;
  XmlTree tree = GeneratePlay("t", options);
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);

  Rng rng(8);
  for (int round = 0; round < 10; ++round) {
    std::vector<NodeId> acts = tree.FindAll("act");
    NodeId target = acts[rng.Below(acts.size())];
    NodeId fresh = rng.Chance(50) ? tree.InsertBefore(target, "act")
                                  : tree.InsertAfter(target, "act");
    scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);

    LabelTable table(tree);
    QueryContext ctx;
    ctx.table = &table;
    ctx.oracle = &scheme;
    XPathEvaluator evaluator(&ctx);
    for (const char* text :
         {"/play//act[2]", "/play//act[1]//Following::act",
          "/play//act//scene[1]"}) {
      Result<XPathQuery> query = ParseXPath(text);
      ASSERT_TRUE(query.ok());
      EXPECT_EQ(evaluator.Evaluate(query.value()),
                EvaluateXPathOnTree(tree, query.value()))
          << "round " << round << ": " << text;
    }
  }
}

TEST(IntegrationDatasets, AllSchemesLabelWholeCorpusConsistently) {
  // Smoke over every dataset: every scheme labels it, sizes are sane, and
  // a sample of relationships is verified against the tree.
  for (const DatasetSpec& spec : NiagaraCorpusSpecs()) {
    XmlTree tree = GenerateDataset(spec);
    std::vector<std::unique_ptr<LabelingScheme>> schemes;
    schemes.push_back(std::make_unique<IntervalScheme>());
    schemes.push_back(std::make_unique<PrefixScheme>(PrefixVariant::kBinary));
    schemes.push_back(std::make_unique<PrimeOptimizedScheme>());
    Rng rng(spec.seed);
    std::vector<NodeId> nodes = tree.PreorderNodes();
    for (auto& scheme : schemes) {
      scheme->LabelTree(tree);
      EXPECT_GT(scheme->MaxLabelBits(), 0) << spec.id << " " << scheme->name();
      for (int i = 0; i < 300; ++i) {
        NodeId x = nodes[rng.Below(nodes.size())];
        NodeId y = nodes[rng.Below(nodes.size())];
        ASSERT_EQ(scheme->IsAncestor(x, y), tree.IsAncestor(x, y))
            << spec.id << " " << scheme->name();
      }
    }
  }
}

}  // namespace
}  // namespace primelabel
