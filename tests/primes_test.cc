#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "primes/estimates.h"
#include "primes/miller_rabin.h"
#include "primes/prime_source.h"
#include "primes/sieve.h"

namespace primelabel {
namespace {

TEST(Sieve, FirstPrimes) {
  Sieve sieve(100);
  const std::vector<std::uint64_t> expected = {
      2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41,
      43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97};
  EXPECT_EQ(sieve.primes(), expected);
}

TEST(Sieve, IsPrimeAgreesWithList) {
  Sieve sieve(1000);
  for (std::uint64_t n = 0; n <= 1000; ++n) {
    bool in_list = std::binary_search(sieve.primes().begin(),
                                      sieve.primes().end(), n);
    EXPECT_EQ(sieve.IsPrime(n), in_list) << n;
  }
}

TEST(Sieve, CountPrimesMatchesPi) {
  Sieve sieve(10000);
  EXPECT_EQ(sieve.CountPrimesUpTo(10), 4u);
  EXPECT_EQ(sieve.CountPrimesUpTo(100), 25u);
  EXPECT_EQ(sieve.CountPrimesUpTo(1000), 168u);
  EXPECT_EQ(sieve.CountPrimesUpTo(10000), 1229u);
  EXPECT_EQ(sieve.CountPrimesUpTo(1), 0u);
  EXPECT_EQ(sieve.CountPrimesUpTo(2), 1u);
}

TEST(Sieve, EdgeLimits) {
  Sieve tiny(1);
  EXPECT_TRUE(tiny.primes().empty());
  Sieve two(2);
  EXPECT_EQ(two.primes().size(), 1u);
  EXPECT_TRUE(two.IsPrime(2));
}

TEST(MillerRabin, AgreesWithSieve) {
  Sieve sieve(20000);
  for (std::uint64_t n = 0; n <= 20000; ++n) {
    EXPECT_EQ(IsPrimeU64(n), sieve.IsPrime(n)) << n;
  }
}

TEST(MillerRabin, LargeKnownPrimes) {
  EXPECT_TRUE(IsPrimeU64(2147483647ull));            // 2^31 - 1 (Mersenne)
  EXPECT_TRUE(IsPrimeU64(1000000007ull));
  EXPECT_TRUE(IsPrimeU64(1000000000000000003ull));
  EXPECT_TRUE(IsPrimeU64(18446744073709551557ull));  // largest u64 prime
}

TEST(MillerRabin, LargeKnownComposites) {
  EXPECT_FALSE(IsPrimeU64(2147483647ull * 2));
  EXPECT_FALSE(IsPrimeU64(1000000007ull * 1000000009ull));
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  EXPECT_FALSE(IsPrimeU64(561));
  EXPECT_FALSE(IsPrimeU64(1105));
  EXPECT_FALSE(IsPrimeU64(41041));
  EXPECT_FALSE(IsPrimeU64(825265));
}

TEST(MillerRabin, NextPrimeAfter) {
  EXPECT_EQ(NextPrimeAfter(0), 2u);
  EXPECT_EQ(NextPrimeAfter(1), 2u);
  EXPECT_EQ(NextPrimeAfter(2), 3u);
  EXPECT_EQ(NextPrimeAfter(3), 5u);
  EXPECT_EQ(NextPrimeAfter(13), 17u);
  EXPECT_EQ(NextPrimeAfter(2147483647ull), 2147483659ull);
}

TEST(PrimeSource, StreamsPrimesInOrder) {
  PrimeSource source;
  EXPECT_EQ(source.Next(), 2u);
  EXPECT_EQ(source.Next(), 3u);
  EXPECT_EQ(source.Next(), 5u);
  EXPECT_EQ(source.Next(), 7u);
  EXPECT_EQ(source.cursor(), 4u);
}

TEST(PrimeSource, PrimeAtIsRandomAccess) {
  PrimeSource source;
  EXPECT_EQ(source.PrimeAt(0), 2u);
  EXPECT_EQ(source.PrimeAt(24), 97u);
  EXPECT_EQ(source.PrimeAt(999), 7919u);  // the 1000th prime
  EXPECT_EQ(source.cursor(), 0u);         // PrimeAt must not advance
}

TEST(PrimeSource, SkipFirstAdvancesMonotonically) {
  PrimeSource source;
  source.SkipFirst(3);
  EXPECT_EQ(source.Next(), 7u);
  source.SkipFirst(2);  // cursor already past: no-op
  EXPECT_EQ(source.Next(), 11u);
}

TEST(PrimeSource, ExtendsPastBootstrapSieve) {
  PrimeSource source;
  // The 4000th prime (37813) is past the 2^15 bootstrap sieve.
  EXPECT_EQ(source.PrimeAt(3999), 37813u);
  EXPECT_TRUE(IsPrimeU64(source.PrimeAt(5000)));
  EXPECT_LT(source.PrimeAt(4999), source.PrimeAt(5000));
}

TEST(PrimeSource, ResetRestartsStream) {
  PrimeSource source;
  source.Next();
  source.Next();
  source.Reset();
  EXPECT_EQ(source.Next(), 2u);
}

TEST(Estimates, NthPrimeEstimateIsAsymptoticallyClose) {
  PrimeSource source;
  // Prime number theorem: p_n / (n ln n) -> 1. Check the ratio is within
  // 30% for a spread of n (the paper's Figure 3 plots exactly this gap).
  for (std::size_t n : {100u, 1000u, 5000u, 10000u}) {
    double actual = static_cast<double>(source.PrimeAt(n - 1));
    double estimate = EstimatedNthPrime(n);
    EXPECT_NEAR(estimate / actual, 1.0, 0.30) << n;
  }
}

TEST(Estimates, BitLengthEstimateWithinOneBit) {
  PrimeSource source;
  // Figure 3's point: the *bit length* error of the estimate stays tiny.
  for (std::size_t n = 2; n <= 10000; n += 97) {
    int actual_bits = BitLengthU64(source.PrimeAt(n - 1));
    double estimated_bits = EstimatedNthPrimeBits(n);
    EXPECT_NEAR(estimated_bits, actual_bits, 1.5) << n;
  }
}

TEST(Estimates, BitLengthU64KnownValues) {
  EXPECT_EQ(BitLengthU64(0), 0);
  EXPECT_EQ(BitLengthU64(1), 1);
  EXPECT_EQ(BitLengthU64(2), 2);
  EXPECT_EQ(BitLengthU64(255), 8);
  EXPECT_EQ(BitLengthU64(256), 9);
  EXPECT_EQ(BitLengthU64(~0ull), 64);
}

TEST(Estimates, PrimeCountTracksPi) {
  Sieve sieve(100000);
  for (double x : {100.0, 1000.0, 10000.0, 100000.0}) {
    double actual =
        static_cast<double>(sieve.CountPrimesUpTo(static_cast<std::uint64_t>(x)));
    EXPECT_NEAR(EstimatedPrimeCount(x) / actual, 1.0, 0.20) << x;
  }
}

}  // namespace
}  // namespace primelabel
