#include "core/ordered_prime_scheme.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "xml/datasets.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

// Ground-truth document order: preorder rank (root = 0).
std::vector<std::uint64_t> GroundTruthOrders(const XmlTree& tree) {
  std::vector<std::uint64_t> orders(tree.arena_size(), 0);
  std::uint64_t counter = 0;
  tree.Preorder([&](NodeId id, int) {
    orders[static_cast<size_t>(id)] = counter++;
  });
  return orders;
}

void ExpectOrdersMatchTree(const OrderedPrimeScheme& scheme,
                           const XmlTree& tree) {
  std::vector<std::uint64_t> truth = GroundTruthOrders(tree);
  tree.Preorder([&](NodeId id, int) {
    ASSERT_EQ(scheme.OrderOf(id), truth[static_cast<size_t>(id)])
        << "node " << id;
  });
}

TEST(OrderedPrimeScheme, OrdersMatchDocumentOrder) {
  RandomTreeOptions options;
  options.node_count = 150;
  options.seed = 5;
  XmlTree tree = GenerateRandomTree(options);
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(tree);
  ExpectOrdersMatchTree(scheme, tree);
}

TEST(OrderedPrimeScheme, StructureQueriesDelegateToPrimeLabels) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  NodeId b = tree.AppendChild(root, "b");
  NodeId a1 = tree.AppendChild(a, "a1");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_TRUE(scheme.IsAncestor(root, a1));
  EXPECT_TRUE(scheme.IsParent(a, a1));
  EXPECT_FALSE(scheme.IsAncestor(b, a1));
}

TEST(OrderedPrimeScheme, PrecedesAndFollowsImplementXPathAxes) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  NodeId a1 = tree.AppendChild(a, "a1");
  NodeId b = tree.AppendChild(root, "b");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  // a precedes b; a1 precedes b; a does NOT precede a1 (ancestor).
  EXPECT_TRUE(scheme.Precedes(a, b));
  EXPECT_TRUE(scheme.Precedes(a1, b));
  EXPECT_FALSE(scheme.Precedes(a, a1));
  EXPECT_FALSE(scheme.Precedes(b, a));
  // b follows a and a1; a1 does NOT follow a (descendant).
  EXPECT_TRUE(scheme.Follows(b, a));
  EXPECT_TRUE(scheme.Follows(b, a1));
  EXPECT_FALSE(scheme.Follows(a1, a));
  EXPECT_FALSE(scheme.Follows(a, b));
}

TEST(OrderedPrimeScheme, OrderedInsertKeepsAllOrdersCorrect) {
  RandomTreeOptions options;
  options.node_count = 80;
  options.seed = 17;
  XmlTree tree = GenerateRandomTree(options);
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(tree);

  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    std::vector<NodeId> nodes = tree.PreorderNodes();
    NodeId target = nodes[rng.Below(nodes.size())];
    NodeId fresh;
    if (target == tree.root() || rng.Chance(40)) {
      fresh = tree.AppendChild(target, "ins");
    } else if (rng.Chance(50)) {
      fresh = tree.InsertBefore(target, "ins");
    } else {
      fresh = tree.InsertAfter(target, "ins");
    }
    int relabeled = scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);
    EXPECT_GE(relabeled, 2);  // the new node + at least one SC record
    ExpectOrdersMatchTree(scheme, tree);
  }
}

TEST(OrderedPrimeScheme, WrapInsertShiftsOrders) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  tree.AppendChild(a, "a1");
  tree.AppendChild(root, "b");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  NodeId wrapper = tree.WrapNode(a, "wrap");
  scheme.HandleInsert(wrapper, InsertOrder::kDocumentOrder);
  ExpectOrdersMatchTree(scheme, tree);
  EXPECT_TRUE(scheme.IsParent(wrapper, a));
}

TEST(OrderedPrimeScheme, CheapUpdatesComparedToSiblingRelabeling) {
  // The Figure 18 scenario in miniature: insert a new act between acts of a
  // play and compare the prime scheme's cost (1 label + a few SC records)
  // against the number of nodes a prefix/interval scheme would shift.
  XmlTree play = GenerateHamlet();
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(play);
  std::vector<NodeId> acts = play.FindAll("act");
  ASSERT_EQ(acts.size(), 5u);
  NodeId fresh = play.InsertBefore(acts[1], "act");
  int cost = scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);
  // Nodes after the insertion point: everything from act 2 on (~4/5 of the
  // document). SC records cover groups of 5, so the cost must be roughly a
  // fifth of that, far below the document size.
  std::uint64_t following = play.node_count() - scheme.OrderOf(fresh) - 1;
  EXPECT_LT(cost, static_cast<int>(following) / 3);
  EXPECT_GT(cost, 2);
  ExpectOrdersMatchTree(scheme, play);
}

TEST(OrderedPrimeScheme, SelfLabelOutgrownByOrderIsReplaced) {
  // Repeatedly insert at the very front: the first-labeled node (self 2,
  // order 1) must be relabeled once its order reaches 2.
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId first = tree.AppendChild(root, "a");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_EQ(scheme.structure().self_label(first), 2u);
  NodeId fresh = tree.InsertBefore(first, "b");
  scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);
  ExpectOrdersMatchTree(scheme, tree);
  // The shifted node now carries a larger prime.
  EXPECT_GT(scheme.structure().self_label(first), 2u);
  EXPECT_TRUE(scheme.IsParent(root, first));
  EXPECT_TRUE(scheme.IsParent(root, fresh));
}

TEST(OrderedPrimeScheme, DeletionNeverRelabelsAndKeepsOrderComparisons) {
  RandomTreeOptions options;
  options.node_count = 100;
  options.seed = 23;
  XmlTree tree = GenerateRandomTree(options);
  OrderedPrimeScheme scheme(/*sc_group_size=*/4);
  scheme.LabelTree(tree);

  // Detach a mid-document subtree.
  std::vector<NodeId> nodes = tree.PreorderNodes();
  NodeId victim = nodes[nodes.size() / 2];
  std::size_t sc_before = scheme.sc_table().size();
  tree.Detach(victim);
  EXPECT_EQ(scheme.HandleDelete(victim), 0);
  EXPECT_LT(scheme.sc_table().size(), sc_before);

  // Remaining nodes keep their (now gapped) order numbers, and relative
  // comparisons still reflect document order.
  std::vector<NodeId> remaining = tree.PreorderNodes();
  for (std::size_t i = 0; i + 1 < remaining.size(); ++i) {
    EXPECT_LT(scheme.OrderOf(remaining[i]), scheme.OrderOf(remaining[i + 1]));
  }
  // Structure queries untouched.
  for (NodeId x : remaining) {
    for (NodeId y : remaining) {
      ASSERT_EQ(scheme.IsAncestor(x, y), tree.IsAncestor(x, y));
    }
  }
  // Further ordered insertions must respect the gapped order sequence:
  // an appended node's order exceeds every live predecessor's, and a
  // mid-document insertion lands strictly between its neighbours.
  NodeId fresh = tree.AppendChild(tree.root(), "post-delete");
  scheme.HandleInsert(fresh, InsertOrder::kDocumentOrder);
  std::vector<NodeId> after_append = tree.PreorderNodes();
  for (std::size_t i = 0; i + 1 < after_append.size(); ++i) {
    ASSERT_LT(scheme.OrderOf(after_append[i]),
              scheme.OrderOf(after_append[i + 1]))
        << "order corrupted after post-delete append at " << i;
  }
  NodeId mid = tree.InsertBefore(remaining[remaining.size() / 2], "mid");
  scheme.HandleInsert(mid, InsertOrder::kDocumentOrder);
  std::vector<NodeId> after_mid = tree.PreorderNodes();
  for (std::size_t i = 0; i + 1 < after_mid.size(); ++i) {
    ASSERT_LT(scheme.OrderOf(after_mid[i]), scheme.OrderOf(after_mid[i + 1]))
        << "order corrupted after post-delete mid insert at " << i;
  }
}

TEST(OrderedPrimeScheme, LabelStringMentionsOrder) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AppendChild(root, "a");
  OrderedPrimeScheme scheme;
  scheme.LabelTree(tree);
  EXPECT_NE(scheme.LabelString(a).find("order=1"), std::string::npos);
  EXPECT_EQ(scheme.name(), "prime-ordered");
}

}  // namespace
}  // namespace primelabel
