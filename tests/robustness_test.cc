// Failure-injection and robustness sweeps: the parser must reject or
// accept (never crash on) arbitrarily mutated documents, and the BigInt
// fast paths must agree with the general path at their size boundaries.

#include <string>

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "util/rng.h"
#include "xml/datasets.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace primelabel {
namespace {

// --- Parser fuzzing ----------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, MutatedDocumentsNeverCrashAndValidOnesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomTreeOptions options;
  options.node_count = 40;
  options.max_depth = 5;
  options.max_fanout = 5;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 3 + 1;
  XmlTree tree = GenerateRandomTree(options);
  std::string xml = SerializeXml(tree);

  // The pristine document must parse to the same structure.
  Result<XmlTree> pristine = ParseXml(xml);
  ASSERT_TRUE(pristine.ok());
  EXPECT_EQ(SerializeXml(*pristine), xml);

  // Byte-level mutations: parse must return OK or ParseError, never crash,
  // and whatever parses must re-serialize and re-parse cleanly.
  for (int round = 0; round < 200; ++round) {
    std::string mutated = xml;
    int edits = 1 + static_cast<int>(rng.Below(3));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[pos] = static_cast<char>('!' + rng.Below(90));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Below(4));
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>('!' + rng.Below(90)));
      }
      if (mutated.empty()) mutated = "<";
    }
    Result<XmlTree> result = ParseXml(mutated);
    if (result.ok()) {
      std::string reserialized = SerializeXml(*result);
      Result<XmlTree> again = ParseXml(reserialized);
      ASSERT_TRUE(again.ok()) << "accepted once, rejected after round-trip: "
                              << reserialized;
      EXPECT_EQ(SerializeXml(*again), reserialized);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(1, 9));

TEST(ParserFuzz, PathologicalInputs) {
  // Deep nesting (parser recursion must cope with reasonable depths).
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "<a>";
  for (int i = 0; i < 2000; ++i) deep += "</a>";
  EXPECT_TRUE(ParseXml(deep).ok());
  // Unbalanced deep nesting.
  std::string unbalanced(deep.substr(0, 3 * 1000));
  EXPECT_FALSE(ParseXml(unbalanced).ok());
  // Long attribute values and many attributes.
  std::string wide = "<e";
  for (int i = 0; i < 500; ++i) {
    wide += " a" + std::to_string(i) + "=\"" + std::string(100, 'x') + "\"";
  }
  wide += "/>";
  Result<XmlTree> parsed = ParseXml(wide);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node(parsed->root()).attributes.size(), 500u);
  // Null bytes inside text.
  std::string with_null = std::string("<a>x") + '\0' + "y</a>";
  Result<XmlTree> nul = ParseXml(with_null);
  EXPECT_TRUE(nul.ok());  // treated as opaque character data
}

// --- BigInt fast-path boundaries ----------------------------------------

TEST(BigIntBoundaries, ModFastPathsAgreeWithDivMod) {
  Rng rng(77);
  // Dividends and divisors straddling the 2-limb (u64) and 4-limb (u128)
  // fast-path boundaries.
  std::vector<BigInt> values;
  for (int limbs = 1; limbs <= 6; ++limbs) {
    for (int round = 0; round < 8; ++round) {
      BigInt v(0);
      for (int i = 0; i < limbs; ++i) {
        v = (v << 32) + BigInt::FromUint64(rng.Next() >> 32);
      }
      if (v.IsZero()) v = BigInt(1);
      values.push_back(v);
    }
  }
  for (const BigInt& a : values) {
    for (const BigInt& b : values) {
      BigInt fast = a % b;
      BigInt slow = BigInt::DivMod(a, b).second;
      ASSERT_EQ(fast, slow) << a << " % " << b;
      ASSERT_EQ(a.IsDivisibleBy(b), slow.IsZero());
      if (b.FitsUint64()) {
        ASSERT_EQ(a.ModU64(b.ToUint64()), slow.ToUint64());
      }
    }
  }
}

TEST(BigIntBoundaries, NegativeDividendsKeepCSemanticsThroughFastPaths) {
  // Small divisor (u64 path) and mid divisor (u128 path) with negative
  // dividends.
  BigInt small_divisor(97);
  BigInt mid_divisor = (BigInt(1) << 80) + BigInt(12345);
  for (const BigInt& divisor : {small_divisor, mid_divisor}) {
    BigInt dividend = -((BigInt(1) << 100) + BigInt(7));
    BigInt fast = dividend % divisor;
    BigInt slow = BigInt::DivMod(dividend, divisor).second;
    EXPECT_EQ(fast, slow);
    EXPECT_LE(fast, BigInt(0));  // sign of the dividend
    EXPECT_EQ((dividend / divisor) * divisor + slow, dividend);
  }
}

TEST(BigIntBoundaries, ExactFourLimbValues) {
  // 128-bit edge: values with the top bit of limb 4 set.
  BigInt max128 = (BigInt(1) << 128) - BigInt(1);
  BigInt just_over = BigInt(1) << 128;
  BigInt divisor = (BigInt(1) << 127) + BigInt(1);
  EXPECT_EQ(max128 % divisor, BigInt::DivMod(max128, divisor).second);
  EXPECT_EQ(just_over % divisor, BigInt::DivMod(just_over, divisor).second);
  EXPECT_TRUE(((BigInt(1) << 128)).IsDivisibleBy(BigInt(1) << 64));
  EXPECT_FALSE(max128.IsDivisibleBy(BigInt(1) << 64));
}

TEST(BigIntBoundaries, MagnitudeBytesRoundTrip) {
  Rng rng(31);
  for (int round = 0; round < 60; ++round) {
    BigInt v = BigInt::FromUint64(rng.Next() >> rng.Below(40));
    for (int i = 0; i < static_cast<int>(rng.Below(5)); ++i) {
      v = (v << 32) + BigInt::FromUint64(rng.Next() >> 32);
    }
    EXPECT_EQ(BigInt::FromMagnitudeBytes(v.ToMagnitudeBytes()), v);
  }
  EXPECT_EQ(BigInt::FromMagnitudeBytes({}), BigInt(0));
  EXPECT_TRUE(BigInt(0).ToMagnitudeBytes().empty());
  // Trailing zero bytes are trimmed: 256 encodes as {0x00, 0x01}.
  EXPECT_EQ(BigInt(256).ToMagnitudeBytes(),
            (std::vector<std::uint8_t>{0x00, 0x01}));
}

}  // namespace
}  // namespace primelabel
