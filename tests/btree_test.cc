#include "store/btree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "labeling/interval.h"
#include "store/plan.h"
#include "store/label_table.h"
#include "store/range_index.h"
#include "util/rng.h"
#include "xml/datasets.h"

namespace primelabel {
namespace {

TEST(BTree, EmptyTree) {
  BTreeIndex tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  BTreeIndex::Value value;
  EXPECT_FALSE(tree.Lookup(42, &value));
  std::vector<BTreeIndex::Value> out;
  tree.Scan(0, 100, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, InsertAndLookup) {
  BTreeIndex tree;
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(static_cast<BTreeIndex::Key>(i) * 7 % 1000, i);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1);
  for (int i = 0; i < 1000; ++i) {
    BTreeIndex::Value value;
    ASSERT_TRUE(tree.Lookup(static_cast<BTreeIndex::Key>(i), &value)) << i;
  }
  BTreeIndex::Value value;
  EXPECT_FALSE(tree.Lookup(1000, &value));
}

TEST(BTree, DuplicateKeyOverwrites) {
  BTreeIndex tree;
  tree.Insert(5, 1);
  tree.Insert(5, 2);
  EXPECT_EQ(tree.size(), 1u);
  BTreeIndex::Value value;
  ASSERT_TRUE(tree.Lookup(5, &value));
  EXPECT_EQ(value, 2);
}

TEST(BTree, ScanReturnsRangeInKeyOrder) {
  BTreeIndex tree;
  for (int i = 0; i < 500; ++i) {
    tree.Insert(static_cast<BTreeIndex::Key>(i) * 2, i);  // even keys
  }
  std::vector<BTreeIndex::Value> out;
  tree.Scan(100, 120, &out);
  EXPECT_EQ(out, (std::vector<BTreeIndex::Value>{50, 51, 52, 53, 54, 55,
                                                 56, 57, 58, 59, 60}));
  out.clear();
  tree.Scan(101, 101, &out);  // between keys
  EXPECT_TRUE(out.empty());
  out.clear();
  tree.Scan(990, 5000, &out);  // past the end
  EXPECT_EQ(out.size(), 5u);   // keys 990, 992, 994, 996, 998
  out.clear();
  tree.Scan(200, 100, &out);  // inverted range
  EXPECT_TRUE(out.empty());
}

TEST(BTree, BulkLoadMatchesInserts) {
  std::vector<std::pair<BTreeIndex::Key, BTreeIndex::Value>> pairs;
  for (int i = 0; i < 10000; ++i) {
    pairs.emplace_back(static_cast<BTreeIndex::Key>(i) * 3 + 1, i);
  }
  BTreeIndex bulk;
  bulk.BulkLoad(pairs);
  EXPECT_EQ(bulk.size(), pairs.size());
  EXPECT_TRUE(bulk.CheckInvariants());
  BTreeIndex incremental;
  for (const auto& [k, v] : pairs) incremental.Insert(k, v);
  EXPECT_TRUE(incremental.CheckInvariants());
  // Same contents through scans.
  std::vector<BTreeIndex::Value> a, b;
  bulk.Scan(0, ~0ull, &a);
  incremental.Scan(0, ~0ull, &b);
  EXPECT_EQ(a, b);
}

TEST(BTree, InsertAfterBulkLoad) {
  std::vector<std::pair<BTreeIndex::Key, BTreeIndex::Value>> pairs;
  for (int i = 0; i < 2000; ++i) {
    pairs.emplace_back(static_cast<BTreeIndex::Key>(i) * 10, i);
  }
  BTreeIndex tree;
  tree.BulkLoad(pairs);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(rng.Below(20000) | 1, i);  // odd keys between the evens
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 2000; ++i) {
    BTreeIndex::Value value;
    ASSERT_TRUE(tree.Lookup(static_cast<BTreeIndex::Key>(i) * 10, &value));
  }
}

TEST(BTree, RandomizedAgainstReferenceMap) {
  Rng rng(123);
  BTreeIndex tree;
  std::vector<std::pair<BTreeIndex::Key, BTreeIndex::Value>> reference;
  for (int i = 0; i < 5000; ++i) {
    BTreeIndex::Key key = rng.Below(100000);
    auto it = std::find_if(reference.begin(), reference.end(),
                           [key](const auto& p) { return p.first == key; });
    if (it == reference.end()) {
      reference.emplace_back(key, i);
    } else {
      it->second = i;
    }
    tree.Insert(key, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), reference.size());
  std::sort(reference.begin(), reference.end());
  // Random range scans agree with the reference.
  for (int round = 0; round < 100; ++round) {
    BTreeIndex::Key lo = rng.Below(100000);
    BTreeIndex::Key hi = lo + rng.Below(5000);
    std::vector<BTreeIndex::Value> got;
    tree.Scan(lo, hi, &got);
    std::vector<BTreeIndex::Value> expected;
    for (const auto& [k, v] : reference) {
      if (k >= lo && k <= hi) expected.push_back(v);
    }
    ASSERT_EQ(got, expected) << "[" << lo << "," << hi << "]";
  }
}

TEST(RangeIndex, MatchesStructuralJoin) {
  RandomTreeOptions options;
  options.node_count = 3000;
  options.max_depth = 7;
  options.max_fanout = 9;
  options.seed = 15;
  XmlTree tree = GenerateRandomTree(options);
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  RangeIndex index(tree, scheme);
  EXPECT_EQ(index.entry_count(), tree.node_count());

  LabelTable table(tree);
  SchemeOracle oracle(&scheme, [&scheme](NodeId id) { return scheme.low(id); });
  QueryContext ctx;
  ctx.table = &table;
  ctx.oracle = &oracle;
  std::vector<NodeId> anchors = table.Rows("a");
  ASSERT_FALSE(anchors.empty());
  for (const std::string& tag : table.Tags()) {
    for (std::size_t i = 0; i < anchors.size(); i += 13) {
      std::vector<NodeId> via_join =
          JoinDescendants(ctx, {anchors[i]}, table.Rows(tag));
      std::vector<NodeId> via_index =
          index.DescendantsWithTag(anchors[i], tag);
      ASSERT_EQ(via_index, via_join) << tag << " anchor " << anchors[i];
    }
  }
}

TEST(RangeIndex, LeafAnchorsHaveNoDescendants) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId leaf = tree.AppendChild(root, "a");
  IntervalScheme scheme;
  scheme.LabelTree(tree);
  RangeIndex index(tree, scheme);
  EXPECT_TRUE(index.DescendantsWithTag(leaf, "a").empty());
  EXPECT_TRUE(index.DescendantsWithTag(root, "zzz").empty());
  EXPECT_EQ(index.DescendantsWithTag(root, "a").size(), 1u);
}

}  // namespace
}  // namespace primelabel
