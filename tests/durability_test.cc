#include "corpus/durable_document_store.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/frame.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Full observable state of a document: structure, tags, every label and
/// self-label, and every order number. Two documents with equal digests
/// answer every oracle query identically.
std::string StateDigest(const LabeledDocument& doc) {
  std::ostringstream out;
  doc.tree().Preorder([&](NodeId id, int depth) {
    out << depth << '|' << doc.tree().name(id) << '|'
        << doc.scheme().structure().self_label(id) << '|'
        << doc.scheme().structure().label(id).ToHexString() << '|'
        << doc.scheme().OrderOf(id) << '\n';
  });
  return out.str();
}

std::string SmallPlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 7;
  return SerializeXml(GeneratePlay("crash", options));
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

// --- Frame codec --------------------------------------------------------

WalRecord SampleInsert() {
  WalRecord r;
  r.type = WalRecord::Type::kInsert;
  r.op = WalRecord::Op::kInsertBefore;
  r.anchor_self = 101;
  r.prime_cursor = 42;
  r.new_self = 103;
  r.tag = "scene";
  r.order = InsertOrder::kDocumentOrder;
  return r;
}

TEST(DurabilityFrame, RecordRoundTripsAllTypes) {
  WalRecord del;
  del.type = WalRecord::Type::kDelete;
  del.anchor_self = 977;

  WalRecord sc;
  sc.type = WalRecord::Type::kScRewrite;
  sc.anchor_self = 103;
  sc.sc_records_updated = 3;
  sc.sc_nodes_relabeled = 2;
  sc.sc_max_order = 900;

  for (const WalRecord& record : {SampleInsert(), del, sc}) {
    std::vector<std::uint8_t> payload = EncodeRecord(record);
    Result<WalRecord> decoded = DecodeRecord(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, record);
  }
}

TEST(DurabilityFrame, CrcKnownAnswer) {
  // CRC-32 ("123456789") == 0xCBF43926 — the classic check value for the
  // IEEE reflected polynomial.
  const char* digits = "123456789";
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(digits), 9);
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
}

TEST(DurabilityFrame, ScanStopsAtFlippedByte) {
  std::vector<std::uint8_t> buffer;
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  const std::uint64_t first_frame = buffer.size();
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  // Flip a payload byte inside the second frame.
  buffer[first_frame + 10] ^= 0x40;

  FrameScan scan = ScanFrames(buffer);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_frame);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.bytes_dropped, buffer.size() - first_frame);
}

TEST(DurabilityFrame, ScanStopsAtTornTail) {
  std::vector<std::uint8_t> buffer;
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  const std::uint64_t first_frame = buffer.size();
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  for (std::size_t cut = first_frame; cut < buffer.size(); ++cut) {
    FrameScan scan = ScanFrames(
        std::span<const std::uint8_t>(buffer.data(), cut));
    EXPECT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first_frame) << "cut at " << cut;
    EXPECT_EQ(scan.tail_truncated, cut != first_frame) << "cut at " << cut;
  }
}

TEST(DurabilityFrame, ScanRejectsImplausibleLength) {
  std::vector<std::uint8_t> buffer(12, 0);
  buffer[3] = 0x7F;  // payload_len with a huge high byte
  FrameScan scan = ScanFrames(buffer);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.tail_truncated);
}

// --- WAL ----------------------------------------------------------------

TEST(DurabilityWal, GroupCommitBuffersUntilFull) {
  std::string path = TempDirPath("group.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.group_commit_records = 4;
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    }
    EXPECT_EQ(wal->pending_records(), 3);
    EXPECT_EQ(wal->committed_frames(), 0u);
    // Nothing on disk yet: the group is still open.
    Result<WalReadResult> read = ReadWal(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read->records.empty());

    ASSERT_TRUE(wal->Append(SampleInsert()).ok());  // fourth → auto-commit
    EXPECT_EQ(wal->pending_records(), 0);
    EXPECT_EQ(wal->committed_frames(), 4u);
    read = ReadWal(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->records.size(), 4u);
  }
  std::remove(path.c_str());
}

TEST(DurabilityWal, DestructorCommitsPartialGroup) {
  std::string path = TempDirPath("dtor.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.group_commit_records = 100;
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }  // clean shutdown: the destructor commits the open group
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_FALSE(read->tail_truncated);
  std::remove(path.c_str());
}

TEST(DurabilityWal, ReopenResumesAfterIntactPrefix) {
  std::string path = TempDirPath("resume.wal");
  std::remove(path.c_str());
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }
  // Simulate a torn tail: append garbage the next writer must drop.
  std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  const std::uint64_t intact = bytes.size();
  bytes.insert(bytes.end(), {0x11, 0x22, 0x33});
  WriteFileBytes(path, bytes);

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->valid_bytes, intact);
  EXPECT_TRUE(read->tail_truncated);

  {
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(path, WalOptions{}, read->valid_bytes);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 3u);
  EXPECT_FALSE(read->tail_truncated);
  std::remove(path.c_str());
}

TEST(DurabilityWal, MissingFileIsNotFound) {
  Result<WalReadResult> read = ReadWal(TempDirPath("absent.wal"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// --- Store lifecycle ----------------------------------------------------

TEST(DurabilityStore, CreateOpenRoundTrip) {
  std::string dir = TempDirPath("store-roundtrip");
  RemoveTree(dir);
  std::string live_digest;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(DurableDocumentStore::Exists(dir));
    EXPECT_EQ(store->epoch(), 0u);

    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_GE(scenes.size(), 2u);
    ASSERT_TRUE(store->AppendChild(scenes[0], "speech").ok());
    ASSERT_TRUE(store->InsertBefore(scenes[1], "scene").ok());
    ASSERT_TRUE(store->Flush().ok());
    live_digest = StateDigest(store->document());
  }
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->recovery_stats().inserts_applied, 2u);
    EXPECT_EQ(store->recovery_stats().sc_checks, 2u);
    EXPECT_FALSE(store->recovery_stats().tail_truncated);
    EXPECT_EQ(StateDigest(store->document()), live_digest);
  }
  RemoveTree(dir);
}

TEST(DurabilityStore, CreateRefusesExistingStore) {
  std::string dir = TempDirPath("store-exists");
  RemoveTree(dir);
  ASSERT_TRUE(DurableDocumentStore::Create(dir, SmallPlayXml()).ok());
  Result<DurableDocumentStore> second =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  RemoveTree(dir);
}

TEST(DurabilityStore, CheckpointCompactsJournalAndDropsOldEpoch) {
  std::string dir = TempDirPath("store-checkpoint");
  RemoveTree(dir);
  std::string live_digest;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> speeches = store->Query("//speech").value();
    ASSERT_GE(speeches.size(), 3u);
    ASSERT_TRUE(store->InsertAfter(speeches[0], "speech").ok());
    ASSERT_TRUE(store->Wrap(speeches[2], "aside").ok());
    ASSERT_TRUE(store->Delete(speeches[1]).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(store->epoch(), 1u);
    live_digest = StateDigest(store->document());

    EXPECT_FALSE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
    EXPECT_FALSE(fs::exists(DurableDocumentStore::JournalPath(dir, 0)));
    EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 1)));
    EXPECT_TRUE(fs::exists(DurableDocumentStore::JournalPath(dir, 1)));
  }
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->epoch(), 1u);
    // The checkpoint folded everything into the snapshot: nothing replays.
    EXPECT_EQ(store->recovery_stats().inserts_applied, 0u);
    EXPECT_EQ(store->recovery_stats().deletes_applied, 0u);
    EXPECT_EQ(StateDigest(store->document()), live_digest);
  }
  RemoveTree(dir);
}

TEST(DurabilityStore, DeleteOfRootIsRejected) {
  std::string dir = TempDirPath("store-delroot");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  Status deleted = store->Delete(store->document().tree().root());
  EXPECT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.code(), StatusCode::kInvalidArgument);
  RemoveTree(dir);
}

// --- Deterministic fault injection --------------------------------------

/// Runs a mixed mutation workload against a freshly created store,
/// capturing the state digest after every operation. digests[0] is the
/// post-Create state; digests[i] the state after the i-th op.
struct WorkloadRun {
  std::string dir;
  std::vector<std::string> digests;
};

WorkloadRun RunWorkload(const char* name, int ops, unsigned seed) {
  WorkloadRun run;
  run.dir = TempDirPath(name);
  RemoveTree(run.dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(run.dir, SmallPlayXml());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  run.digests.push_back(StateDigest(store->document()));

  std::mt19937 rng(seed);
  for (int i = 0; i < ops; ++i) {
    std::vector<NodeId> elements = NonRootElements(store->document().tree());
    NodeId anchor = elements[rng() % elements.size()];
    switch (rng() % 5) {
      case 0:
        EXPECT_TRUE(store->InsertBefore(anchor, "ib").ok());
        break;
      case 1:
        EXPECT_TRUE(store->InsertAfter(anchor, "ia").ok());
        break;
      case 2:
        EXPECT_TRUE(store->AppendChild(anchor, "ac").ok());
        break;
      case 3:
        EXPECT_TRUE(store->Wrap(anchor, "wr").ok());
        break;
      case 4:
        // Keep the tree from shrinking away: delete only while roomy.
        if (elements.size() > 20) {
          EXPECT_TRUE(store->Delete(anchor).ok());
        } else {
          EXPECT_TRUE(store->AppendChild(anchor, "ac").ok());
        }
        break;
    }
    run.digests.push_back(StateDigest(store->document()));
  }
  EXPECT_TRUE(store->Flush().ok());
  return run;
}

/// Frame start offsets in a journal file (after the 8-byte magic), plus
/// the end-of-file offset.
std::vector<std::uint64_t> FrameBoundaries(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::uint64_t> boundaries;
  std::uint64_t off = 8;
  while (off + 8 <= bytes.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    boundaries.push_back(off);
    off += 8 + len;
    if (off > bytes.size()) break;
  }
  boundaries.push_back(std::min<std::uint64_t>(off, bytes.size()));
  return boundaries;
}

/// Copies the store, truncates the journal copy to `kill` bytes, recovers,
/// and checks the recovered state digest equals the live run's digest at
/// the number of operations the intact prefix holds.
void CheckKillPoint(const WorkloadRun& run,
                    std::span<const std::uint8_t> journal,
                    std::uint64_t kill, const std::string& scratch_dir) {
  RemoveTree(scratch_dir);
  fs::create_directories(scratch_dir);
  fs::copy(DurableDocumentStore::ManifestPath(run.dir),
           DurableDocumentStore::ManifestPath(scratch_dir));
  fs::copy(DurableDocumentStore::SnapshotPath(run.dir, 0),
           DurableDocumentStore::SnapshotPath(scratch_dir, 0));
  WriteFileBytes(DurableDocumentStore::JournalPath(scratch_dir, 0),
                 journal.subspan(0, kill));

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(scratch_dir);
  ASSERT_TRUE(store.ok()) << "kill at " << kill << ": "
                          << store.status().ToString();
  const RecoveryStats& stats = store->recovery_stats();
  std::uint64_t ops = stats.inserts_applied + stats.deletes_applied;
  ASSERT_LT(ops, run.digests.size()) << "kill at " << kill;
  EXPECT_EQ(StateDigest(store->document()), run.digests[ops])
      << "kill at " << kill << " recovered " << ops << " ops";
  RemoveTree(scratch_dir);
}

TEST(DurabilityFaultInjection, EveryFrameBoundaryAndMidFrameKill) {
  WorkloadRun run = RunWorkload("fault-base", /*ops=*/16, /*seed=*/1234);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  ASSERT_GE(boundaries.size(), 2u);
  // The full file recovers every op.
  ASSERT_EQ(boundaries.back(), journal.size());

  std::set<std::uint64_t> kills;
  kills.insert(0);  // empty journal: snapshot-only
  kills.insert(4);  // torn magic
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    std::uint64_t start = boundaries[i];
    std::uint64_t end = boundaries[i + 1];
    kills.insert(start);            // clean cut at the boundary
    kills.insert(start + 1);        // torn length field
    kills.insert(start + 8);        // header intact, payload missing
    kills.insert((start + end) / 2);  // mid-payload
  }
  kills.insert(journal.size());  // no kill at all

  std::string scratch = TempDirPath("fault-scratch");
  for (std::uint64_t kill : kills) {
    if (kill > journal.size()) continue;
    CheckKillPoint(run, journal, kill, scratch);
  }

  // Sanity: the uncut journal replays the whole workload.
  Result<DurableDocumentStore> full = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(StateDigest(full->document()), run.digests.back());
  RemoveTree(run.dir);
}

TEST(DurabilityFaultInjection, FlippedByteTruncatesAtCorruptFrame) {
  WorkloadRun run = RunWorkload("fault-flip", /*ops=*/10, /*seed=*/99);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  ASSERT_GE(boundaries.size(), 6u);

  // Corrupt one payload byte in the middle of the 5th frame: recovery must
  // keep everything before it and drop everything from it on.
  std::vector<std::uint8_t> corrupted = journal;
  std::uint64_t victim = boundaries[4] + 9;
  corrupted[victim] ^= 0x01;
  WriteFileBytes(DurableDocumentStore::JournalPath(run.dir, 0), corrupted);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->recovery_stats().tail_truncated);
  EXPECT_EQ(store->recovery_stats().journal_valid_bytes, boundaries[4]);
  std::uint64_t ops = store->recovery_stats().inserts_applied +
                      store->recovery_stats().deletes_applied;
  EXPECT_EQ(StateDigest(store->document()), run.digests[ops]);
  RemoveTree(run.dir);
}

TEST(DurabilityFaultInjection, RecoveredStoreAcceptsFurtherMutations) {
  WorkloadRun run = RunWorkload("fault-continue", /*ops=*/8, /*seed=*/5);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  // Kill mid-journal, recover, keep writing, reopen: the continuation must
  // survive its own restart.
  std::uint64_t kill = boundaries[boundaries.size() / 2] + 3;
  WriteFileBytes(DurableDocumentStore::JournalPath(run.dir, 0),
                 std::span<const std::uint8_t>(journal).subspan(0, kill));

  std::string digest;
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(run.dir);
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_FALSE(scenes.empty());
    ASSERT_TRUE(store->AppendChild(scenes.back(), "epilogue").ok());
    ASSERT_TRUE(store->Flush().ok());
    digest = StateDigest(store->document());
  }
  Result<DurableDocumentStore> reopened = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), digest);
  EXPECT_EQ(reopened->Query("//epilogue").value().size(), 1u);
  RemoveTree(run.dir);
}

TEST(DurabilityRecovery, ChecksummedButWrongJournalFailsLoudly) {
  std::string dir = TempDirPath("diverge");
  RemoveTree(dir);
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_TRUE(store->AppendChild(scenes[0], "speech").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  // Rewrite the journal with a record whose new_self claims a different
  // prime than replay will derive. The frame checksums fine — this is the
  // "valid journal, wrong content" case and must fail, not silently
  // produce a different document.
  std::string wal_path = DurableDocumentStore::JournalPath(dir, 0);
  Result<WalReadResult> read = ReadWal(wal_path);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read->records.empty());
  WalRecord tampered = read->records[0];
  ASSERT_EQ(tampered.type, WalRecord::Type::kInsert);
  tampered.new_self += 2;
  std::vector<std::uint8_t> bytes(
      {'P', 'L', 'W', 'A', 'L', 'O', 'G', '1'});
  AppendFrame(EncodeRecord(tampered), &bytes);
  WriteFileBytes(wal_path, bytes);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInternal);
  EXPECT_NE(store.status().ToString().find("diverged"), std::string::npos);
  RemoveTree(dir);
}

// --- SC-table ordered-insert equivalence under replay -------------------

/// Replays the journal on the snapshot and requires the recovered document
/// to be bit-identical to the live one — labels, self-labels, and the full
/// order relation (the SC table's answers).
void ExpectReplayEquivalence(DurableDocumentStore& store) {
  ASSERT_TRUE(store.Flush().ok());
  RecoveryStats stats;
  Result<LabeledDocument> recovered = RecoverDocument(
      DurableDocumentStore::SnapshotPath(store.dir(), store.epoch()),
      DurableDocumentStore::JournalPath(store.dir(), store.epoch()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(StateDigest(*recovered), StateDigest(store.document()));

  // Order numbers recovered via the SC table sort the tree into document
  // order exactly like the live run's.
  std::vector<std::uint64_t> live_orders, replay_orders;
  store.document().tree().Preorder([&](NodeId id, int) {
    live_orders.push_back(store.document().scheme().OrderOf(id));
  });
  recovered->tree().Preorder([&](NodeId id, int) {
    replay_orders.push_back(recovered->scheme().OrderOf(id));
  });
  EXPECT_EQ(live_orders, replay_orders);
}

TEST(DurabilityScEquivalence, RandomLeafInsertWorkload) {
  // Fig. 16/17 shape: a stream of leaf insertions at random positions,
  // each triggering an SC-table rewrite of the sibling group.
  std::string dir = TempDirPath("sc-leaf");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::mt19937 rng(2718);
  for (int i = 0; i < 24; ++i) {
    std::vector<NodeId> speeches = store->Query("//speech").value();
    ASSERT_FALSE(speeches.empty());
    NodeId anchor = speeches[rng() % speeches.size()];
    if (rng() % 2 == 0) {
      ASSERT_TRUE(store->InsertBefore(anchor, "speech").ok());
    } else {
      ASSERT_TRUE(store->InsertAfter(anchor, "speech").ok());
    }
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

TEST(DurabilityScEquivalence, SkewedHotSpotInsertWorkload) {
  // Fig. 18 shape: every insertion lands before the same hot sibling, the
  // worst case for order maintenance — maximal SC rewrites and frequent
  // replacement self-labels.
  std::string dir = TempDirPath("sc-hot");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_FALSE(scenes.empty());
  NodeId hot = scenes[0];
  for (int i = 0; i < 20; ++i) {
    Result<NodeId> fresh = store->InsertBefore(hot, "prologue");
    ASSERT_TRUE(fresh.ok());
    hot = *fresh;  // always insert before the newest node: fully skewed
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

TEST(DurabilityScEquivalence, NonLeafWrapAndDeleteWorkload) {
  // Non-leaf mutations: Wrap relabels whole subtrees, Delete frees order
  // slots — both must replay to the same SC state.
  std::string dir = TempDirPath("sc-wrap");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::mt19937 rng(31415);
  for (int i = 0; i < 16; ++i) {
    std::vector<NodeId> elements =
        NonRootElements(store->document().tree());
    NodeId anchor = elements[rng() % elements.size()];
    switch (rng() % 3) {
      case 0:
        ASSERT_TRUE(store->Wrap(anchor, "wrap").ok());
        break;
      case 1:
        ASSERT_TRUE(store->AppendChild(anchor, "child").ok());
        break;
      case 2:
        if (elements.size() > 25) {
          ASSERT_TRUE(store->Delete(anchor).ok());
        } else {
          ASSERT_TRUE(store->InsertAfter(anchor, "sibling").ok());
        }
        break;
    }
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

}  // namespace
}  // namespace primelabel
