#include "corpus/durable_document_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/frame.h"
#include "durability/recovery.h"
#include "durability/vfs.h"
#include "durability/wal.h"
#include "xml/serializer.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

namespace fs = std::filesystem;

/// Unique per test process: ctest runs tests from one binary
/// concurrently, and a shared literal name races SetUp/TearDown.
std::string TempDirPath(const char* name) {
  return std::string(::testing::TempDir()) + "/p" +
         std::to_string(::getpid()) + "-" + name;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Full observable state of a document: structure, tags, every label and
/// self-label, and every order number. Two documents with equal digests
/// answer every oracle query identically.
std::string StateDigest(const LabeledDocument& doc) {
  std::ostringstream out;
  doc.tree().Preorder([&](NodeId id, int depth) {
    out << depth << '|' << doc.tree().name(id) << '|'
        << doc.scheme().structure().self_label(id) << '|'
        << doc.scheme().structure().label(id).ToHexString() << '|'
        << doc.scheme().OrderOf(id) << '\n';
  });
  return out.str();
}

std::string SmallPlayXml() {
  PlayOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.min_speeches_per_scene = 2;
  options.max_speeches_per_scene = 3;
  options.seed = 7;
  return SerializeXml(GeneratePlay("crash", options));
}

std::vector<NodeId> NonRootElements(const XmlTree& tree) {
  std::vector<NodeId> out;
  tree.Preorder([&](NodeId id, int) {
    if (id != tree.root() && tree.IsElement(id)) out.push_back(id);
  });
  return out;
}

// --- Frame codec --------------------------------------------------------

WalRecord SampleInsert() {
  WalRecord r;
  r.type = WalRecord::Type::kInsert;
  r.op = WalRecord::Op::kInsertBefore;
  r.anchor_self = 101;
  r.prime_cursor = 42;
  r.new_self = 103;
  r.tag = "scene";
  r.order = InsertOrder::kDocumentOrder;
  return r;
}

TEST(DurabilityFrame, RecordRoundTripsAllTypes) {
  WalRecord del;
  del.type = WalRecord::Type::kDelete;
  del.anchor_self = 977;

  WalRecord sc;
  sc.type = WalRecord::Type::kScRewrite;
  sc.anchor_self = 103;
  sc.sc_records_updated = 3;
  sc.sc_nodes_relabeled = 2;
  sc.sc_max_order = 900;

  for (const WalRecord& record : {SampleInsert(), del, sc}) {
    std::vector<std::uint8_t> payload = EncodeRecord(record);
    Result<WalRecord> decoded = DecodeRecord(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, record);
  }
}

TEST(DurabilityFrame, CrcKnownAnswer) {
  // CRC-32 ("123456789") == 0xCBF43926 — the classic check value for the
  // IEEE reflected polynomial.
  const char* digits = "123456789";
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(digits), 9);
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
}

TEST(DurabilityFrame, ScanStopsAtFlippedByte) {
  std::vector<std::uint8_t> buffer;
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  const std::uint64_t first_frame = buffer.size();
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  // Flip a payload byte inside the second frame.
  buffer[first_frame + 10] ^= 0x40;

  FrameScan scan = ScanFrames(buffer);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_frame);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.bytes_dropped, buffer.size() - first_frame);
}

TEST(DurabilityFrame, ScanStopsAtTornTail) {
  std::vector<std::uint8_t> buffer;
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  const std::uint64_t first_frame = buffer.size();
  AppendFrame(EncodeRecord(SampleInsert()), &buffer);
  for (std::size_t cut = first_frame; cut < buffer.size(); ++cut) {
    FrameScan scan = ScanFrames(
        std::span<const std::uint8_t>(buffer.data(), cut));
    EXPECT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first_frame) << "cut at " << cut;
    EXPECT_EQ(scan.tail_truncated, cut != first_frame) << "cut at " << cut;
  }
}

TEST(DurabilityFrame, ScanRejectsImplausibleLength) {
  std::vector<std::uint8_t> buffer(12, 0);
  buffer[3] = 0x7F;  // payload_len with a huge high byte
  FrameScan scan = ScanFrames(buffer);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.tail_truncated);
}

// --- WAL ----------------------------------------------------------------

TEST(DurabilityWal, GroupCommitBuffersUntilFull) {
  std::string path = TempDirPath("group.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.group_commit_records = 4;
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(DefaultVfs(), path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    }
    EXPECT_EQ(wal->pending_records(), 3);
    EXPECT_EQ(wal->committed_frames(), 0u);
    // Nothing on disk yet: the group is still open.
    Result<WalReadResult> read = ReadWal(DefaultVfs(), path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read->records.empty());

    ASSERT_TRUE(wal->Append(SampleInsert()).ok());  // fourth → auto-commit
    EXPECT_EQ(wal->pending_records(), 0);
    EXPECT_EQ(wal->committed_frames(), 4u);
    read = ReadWal(DefaultVfs(), path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->records.size(), 4u);
  }
  std::remove(path.c_str());
}

TEST(DurabilityWal, DestructorCommitsPartialGroup) {
  std::string path = TempDirPath("dtor.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.group_commit_records = 100;
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(DefaultVfs(), path, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }  // clean shutdown: the destructor commits the open group
  Result<WalReadResult> read = ReadWal(DefaultVfs(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_FALSE(read->tail_truncated);
  std::remove(path.c_str());
}

TEST(DurabilityWal, ReopenResumesAfterIntactPrefix) {
  std::string path = TempDirPath("resume.wal");
  std::remove(path.c_str());
  {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(DefaultVfs(), path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }
  // Simulate a torn tail: append garbage the next writer must drop.
  std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  const std::uint64_t intact = bytes.size();
  bytes.insert(bytes.end(), {0x11, 0x22, 0x33});
  WriteFileBytes(path, bytes);

  Result<WalReadResult> read = ReadWal(DefaultVfs(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->valid_bytes, intact);
  EXPECT_TRUE(read->tail_truncated);

  {
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(DefaultVfs(), path, WalOptions{}, read->valid_bytes);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  }
  read = ReadWal(DefaultVfs(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 3u);
  EXPECT_FALSE(read->tail_truncated);
  std::remove(path.c_str());
}

TEST(DurabilityWal, MissingFileIsNotFound) {
  Result<WalReadResult> read = ReadWal(DefaultVfs(), TempDirPath("absent.wal"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// --- Store lifecycle ----------------------------------------------------

TEST(DurabilityStore, CreateOpenRoundTrip) {
  std::string dir = TempDirPath("store-roundtrip");
  RemoveTree(dir);
  std::string live_digest;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(DurableDocumentStore::Exists(dir));
    EXPECT_EQ(store->epoch(), 0u);

    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_GE(scenes.size(), 2u);
    ASSERT_TRUE(store->AppendChild(scenes[0], "speech").ok());
    ASSERT_TRUE(store->InsertBefore(scenes[1], "scene").ok());
    ASSERT_TRUE(store->Flush().ok());
    live_digest = StateDigest(store->document());
  }
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->recovery_stats().inserts_applied, 2u);
    EXPECT_EQ(store->recovery_stats().sc_checks, 2u);
    EXPECT_FALSE(store->recovery_stats().tail_truncated);
    EXPECT_EQ(StateDigest(store->document()), live_digest);
  }
  RemoveTree(dir);
}

TEST(DurabilityStore, CreateRefusesExistingStore) {
  std::string dir = TempDirPath("store-exists");
  RemoveTree(dir);
  ASSERT_TRUE(DurableDocumentStore::Create(dir, SmallPlayXml()).ok());
  Result<DurableDocumentStore> second =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  RemoveTree(dir);
}

TEST(DurabilityStore, CheckpointCompactsJournalAndDropsOldEpoch) {
  std::string dir = TempDirPath("store-checkpoint");
  RemoveTree(dir);
  std::string live_digest;
  // Full-snapshot checkpoints only: with deltas the base epoch's file is
  // deliberately retained (the delta chains to it) — covered by the delta
  // tests below.
  DurableDocumentStore::Options options;
  options.delta_checkpoints = false;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml(), options);
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> speeches = store->Query("//speech").value();
    ASSERT_GE(speeches.size(), 3u);
    ASSERT_TRUE(store->InsertAfter(speeches[0], "speech").ok());
    ASSERT_TRUE(store->Wrap(speeches[2], "aside").ok());
    ASSERT_TRUE(store->Delete(speeches[1]).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(store->epoch(), 1u);
    live_digest = StateDigest(store->document());

    EXPECT_FALSE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
    EXPECT_FALSE(fs::exists(DurableDocumentStore::JournalPath(dir, 0)));
    EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 1)));
    EXPECT_TRUE(fs::exists(DurableDocumentStore::JournalPath(dir, 1)));
  }
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->epoch(), 1u);
    // The checkpoint folded everything into the snapshot: nothing replays.
    EXPECT_EQ(store->recovery_stats().inserts_applied, 0u);
    EXPECT_EQ(store->recovery_stats().deletes_applied, 0u);
    EXPECT_EQ(StateDigest(store->document()), live_digest);
  }
  RemoveTree(dir);
}

TEST(DurabilityStore, DeleteOfRootIsRejected) {
  std::string dir = TempDirPath("store-delroot");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  Status deleted = store->Delete(store->document().tree().root());
  EXPECT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.code(), StatusCode::kInvalidArgument);
  RemoveTree(dir);
}

// --- Deterministic fault injection --------------------------------------

/// Runs a mixed mutation workload against a freshly created store,
/// capturing the state digest after every operation. digests[0] is the
/// post-Create state; digests[i] the state after the i-th op.
struct WorkloadRun {
  std::string dir;
  std::vector<std::string> digests;
};

WorkloadRun RunWorkload(const char* name, int ops, unsigned seed) {
  WorkloadRun run;
  run.dir = TempDirPath(name);
  RemoveTree(run.dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(run.dir, SmallPlayXml());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  run.digests.push_back(StateDigest(store->document()));

  std::mt19937 rng(seed);
  for (int i = 0; i < ops; ++i) {
    std::vector<NodeId> elements = NonRootElements(store->document().tree());
    NodeId anchor = elements[rng() % elements.size()];
    switch (rng() % 5) {
      case 0:
        EXPECT_TRUE(store->InsertBefore(anchor, "ib").ok());
        break;
      case 1:
        EXPECT_TRUE(store->InsertAfter(anchor, "ia").ok());
        break;
      case 2:
        EXPECT_TRUE(store->AppendChild(anchor, "ac").ok());
        break;
      case 3:
        EXPECT_TRUE(store->Wrap(anchor, "wr").ok());
        break;
      case 4:
        // Keep the tree from shrinking away: delete only while roomy.
        if (elements.size() > 20) {
          EXPECT_TRUE(store->Delete(anchor).ok());
        } else {
          EXPECT_TRUE(store->AppendChild(anchor, "ac").ok());
        }
        break;
    }
    run.digests.push_back(StateDigest(store->document()));
  }
  EXPECT_TRUE(store->Flush().ok());
  return run;
}

/// Frame start offsets in a journal file (after the 8-byte magic), plus
/// the end-of-file offset.
std::vector<std::uint64_t> FrameBoundaries(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::uint64_t> boundaries;
  std::uint64_t off = 8;
  while (off + 8 <= bytes.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    boundaries.push_back(off);
    off += 8 + len;
    if (off > bytes.size()) break;
  }
  boundaries.push_back(std::min<std::uint64_t>(off, bytes.size()));
  return boundaries;
}

/// Copies the store, truncates the journal copy to `kill` bytes, recovers,
/// and checks the recovered state digest equals the live run's digest at
/// the number of operations the intact prefix holds.
void CheckKillPoint(const WorkloadRun& run,
                    std::span<const std::uint8_t> journal,
                    std::uint64_t kill, const std::string& scratch_dir) {
  RemoveTree(scratch_dir);
  fs::create_directories(scratch_dir);
  fs::copy(DurableDocumentStore::ManifestPath(run.dir),
           DurableDocumentStore::ManifestPath(scratch_dir));
  fs::copy(DurableDocumentStore::SnapshotPath(run.dir, 0),
           DurableDocumentStore::SnapshotPath(scratch_dir, 0));
  WriteFileBytes(DurableDocumentStore::JournalPath(scratch_dir, 0),
                 journal.subspan(0, kill));

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(scratch_dir);
  ASSERT_TRUE(store.ok()) << "kill at " << kill << ": "
                          << store.status().ToString();
  const RecoveryStats& stats = store->recovery_stats();
  std::uint64_t ops = stats.inserts_applied + stats.deletes_applied;
  ASSERT_LT(ops, run.digests.size()) << "kill at " << kill;
  EXPECT_EQ(StateDigest(store->document()), run.digests[ops])
      << "kill at " << kill << " recovered " << ops << " ops";
  RemoveTree(scratch_dir);
}

TEST(DurabilityFaultInjection, EveryFrameBoundaryAndMidFrameKill) {
  WorkloadRun run = RunWorkload("fault-base", /*ops=*/16, /*seed=*/1234);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  ASSERT_GE(boundaries.size(), 2u);
  // The full file recovers every op.
  ASSERT_EQ(boundaries.back(), journal.size());

  std::set<std::uint64_t> kills;
  kills.insert(0);  // empty journal: snapshot-only
  kills.insert(4);  // torn magic
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    std::uint64_t start = boundaries[i];
    std::uint64_t end = boundaries[i + 1];
    kills.insert(start);            // clean cut at the boundary
    kills.insert(start + 1);        // torn length field
    kills.insert(start + 8);        // header intact, payload missing
    kills.insert((start + end) / 2);  // mid-payload
  }
  kills.insert(journal.size());  // no kill at all

  std::string scratch = TempDirPath("fault-scratch");
  for (std::uint64_t kill : kills) {
    if (kill > journal.size()) continue;
    CheckKillPoint(run, journal, kill, scratch);
  }

  // Sanity: the uncut journal replays the whole workload.
  Result<DurableDocumentStore> full = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(StateDigest(full->document()), run.digests.back());
  RemoveTree(run.dir);
}

TEST(DurabilityFaultInjection, FlippedByteTruncatesAtCorruptFrame) {
  WorkloadRun run = RunWorkload("fault-flip", /*ops=*/10, /*seed=*/99);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  ASSERT_GE(boundaries.size(), 6u);

  // Corrupt one payload byte in the middle of the 5th frame: recovery must
  // keep everything before it and drop everything from it on.
  std::vector<std::uint8_t> corrupted = journal;
  std::uint64_t victim = boundaries[4] + 9;
  corrupted[victim] ^= 0x01;
  WriteFileBytes(DurableDocumentStore::JournalPath(run.dir, 0), corrupted);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->recovery_stats().tail_truncated);
  EXPECT_EQ(store->recovery_stats().journal_valid_bytes, boundaries[4]);
  std::uint64_t ops = store->recovery_stats().inserts_applied +
                      store->recovery_stats().deletes_applied;
  EXPECT_EQ(StateDigest(store->document()), run.digests[ops]);
  RemoveTree(run.dir);
}

TEST(DurabilityFaultInjection, RecoveredStoreAcceptsFurtherMutations) {
  WorkloadRun run = RunWorkload("fault-continue", /*ops=*/8, /*seed=*/5);
  std::vector<std::uint8_t> journal =
      ReadFileBytes(DurableDocumentStore::JournalPath(run.dir, 0));
  std::vector<std::uint64_t> boundaries = FrameBoundaries(journal);
  // Kill mid-journal, recover, keep writing, reopen: the continuation must
  // survive its own restart.
  std::uint64_t kill = boundaries[boundaries.size() / 2] + 3;
  WriteFileBytes(DurableDocumentStore::JournalPath(run.dir, 0),
                 std::span<const std::uint8_t>(journal).subspan(0, kill));

  std::string digest;
  {
    Result<DurableDocumentStore> store = DurableDocumentStore::Open(run.dir);
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_FALSE(scenes.empty());
    ASSERT_TRUE(store->AppendChild(scenes.back(), "epilogue").ok());
    ASSERT_TRUE(store->Flush().ok());
    digest = StateDigest(store->document());
  }
  Result<DurableDocumentStore> reopened = DurableDocumentStore::Open(run.dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), digest);
  EXPECT_EQ(reopened->Query("//epilogue").value().size(), 1u);
  RemoveTree(run.dir);
}

TEST(DurabilityRecovery, ChecksummedButWrongJournalFailsLoudly) {
  std::string dir = TempDirPath("diverge");
  RemoveTree(dir);
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_TRUE(store->AppendChild(scenes[0], "speech").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  // Rewrite the journal with a record whose new_self claims a different
  // prime than replay will derive. The frame checksums fine — this is the
  // "valid journal, wrong content" case and must fail, not silently
  // produce a different document.
  std::string wal_path = DurableDocumentStore::JournalPath(dir, 0);
  Result<WalReadResult> read = ReadWal(DefaultVfs(), wal_path);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read->records.empty());
  WalRecord tampered = read->records[0];
  ASSERT_EQ(tampered.type, WalRecord::Type::kInsert);
  tampered.new_self += 2;
  std::vector<std::uint8_t> bytes(
      {'P', 'L', 'W', 'A', 'L', 'O', 'G', '1'});
  AppendFrame(EncodeRecord(tampered), &bytes);
  WriteFileBytes(wal_path, bytes);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInternal);
  EXPECT_NE(store.status().ToString().find("diverged"), std::string::npos);
  RemoveTree(dir);
}

// --- SC-table ordered-insert equivalence under replay -------------------

/// Replays the journal on the snapshot and requires the recovered document
/// to be bit-identical to the live one — labels, self-labels, and the full
/// order relation (the SC table's answers).
void ExpectReplayEquivalence(DurableDocumentStore& store) {
  ASSERT_TRUE(store.Flush().ok());
  RecoveryStats stats;
  Result<LabeledDocument> recovered = RecoverDocument(
      DefaultVfs(),
      DurableDocumentStore::SnapshotPath(store.dir(), store.epoch()),
      DurableDocumentStore::JournalPath(store.dir(), store.epoch()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(StateDigest(*recovered), StateDigest(store.document()));

  // Order numbers recovered via the SC table sort the tree into document
  // order exactly like the live run's.
  std::vector<std::uint64_t> live_orders, replay_orders;
  store.document().tree().Preorder([&](NodeId id, int) {
    live_orders.push_back(store.document().scheme().OrderOf(id));
  });
  recovered->tree().Preorder([&](NodeId id, int) {
    replay_orders.push_back(recovered->scheme().OrderOf(id));
  });
  EXPECT_EQ(live_orders, replay_orders);
}

TEST(DurabilityScEquivalence, RandomLeafInsertWorkload) {
  // Fig. 16/17 shape: a stream of leaf insertions at random positions,
  // each triggering an SC-table rewrite of the sibling group.
  std::string dir = TempDirPath("sc-leaf");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::mt19937 rng(2718);
  for (int i = 0; i < 24; ++i) {
    std::vector<NodeId> speeches = store->Query("//speech").value();
    ASSERT_FALSE(speeches.empty());
    NodeId anchor = speeches[rng() % speeches.size()];
    if (rng() % 2 == 0) {
      ASSERT_TRUE(store->InsertBefore(anchor, "speech").ok());
    } else {
      ASSERT_TRUE(store->InsertAfter(anchor, "speech").ok());
    }
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

TEST(DurabilityScEquivalence, SkewedHotSpotInsertWorkload) {
  // Fig. 18 shape: every insertion lands before the same hot sibling, the
  // worst case for order maintenance — maximal SC rewrites and frequent
  // replacement self-labels.
  std::string dir = TempDirPath("sc-hot");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_FALSE(scenes.empty());
  NodeId hot = scenes[0];
  for (int i = 0; i < 20; ++i) {
    Result<NodeId> fresh = store->InsertBefore(hot, "prologue");
    ASSERT_TRUE(fresh.ok());
    hot = *fresh;  // always insert before the newest node: fully skewed
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

TEST(DurabilityScEquivalence, NonLeafWrapAndDeleteWorkload) {
  // Non-leaf mutations: Wrap relabels whole subtrees, Delete frees order
  // slots — both must replay to the same SC state.
  std::string dir = TempDirPath("sc-wrap");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::mt19937 rng(31415);
  for (int i = 0; i < 16; ++i) {
    std::vector<NodeId> elements =
        NonRootElements(store->document().tree());
    NodeId anchor = elements[rng() % elements.size()];
    switch (rng() % 3) {
      case 0:
        ASSERT_TRUE(store->Wrap(anchor, "wrap").ok());
        break;
      case 1:
        ASSERT_TRUE(store->AppendChild(anchor, "child").ok());
        break;
      case 2:
        if (elements.size() > 25) {
          ASSERT_TRUE(store->Delete(anchor).ok());
        } else {
          ASSERT_TRUE(store->InsertAfter(anchor, "sibling").ok());
        }
        break;
    }
  }
  ExpectReplayEquivalence(*store);
  RemoveTree(dir);
}

// --- Vfs seam ------------------------------------------------------------

TEST(DurabilityVfs, PosixRoundTripAndDirectoryOps) {
  Vfs& vfs = DefaultVfs();
  std::string dir = TempDirPath("vfs-posix");
  RemoveTree(dir);
  ASSERT_TRUE(vfs.CreateDirs(dir).ok());

  const std::string path = dir + "/blob";
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(vfs.WriteWhole(path, payload).ok());
  EXPECT_TRUE(vfs.Exists(path));
  EXPECT_EQ(vfs.FileSize(path).value(), payload.size());
  EXPECT_EQ(vfs.ReadAll(path).value(), payload);
  // Bounded read returns a prefix.
  EXPECT_EQ(vfs.ReadAll(path, 3).value(),
            (std::vector<std::uint8_t>{1, 2, 3}));

  ASSERT_TRUE(vfs.Truncate(path, 4).ok());
  EXPECT_EQ(vfs.FileSize(path).value(), 4u);

  const std::string renamed = dir + "/blob2";
  ASSERT_TRUE(vfs.Rename(path, renamed).ok());
  EXPECT_FALSE(vfs.Exists(path));
  std::vector<std::string> names = vfs.List(dir).value();
  EXPECT_NE(std::find(names.begin(), names.end(), "blob2"), names.end());

  ASSERT_TRUE(vfs.Unlink(renamed).ok());
  EXPECT_FALSE(vfs.Exists(renamed));
  EXPECT_EQ(vfs.ReadAll(renamed).status().code(), StatusCode::kNotFound);
  RemoveTree(dir);
}

TEST(DurabilityVfs, FaultKindsSurfaceTypedStatuses) {
  std::string dir = TempDirPath("vfs-faults");
  RemoveTree(dir);
  ASSERT_TRUE(DefaultVfs().CreateDirs(dir).ok());
  std::vector<std::uint8_t> payload(32, 0xAB);

  {
    // Short write: typed kIoError, and exactly half the bytes land (the
    // torn-write shape recovery must tolerate).
    FaultInjectingVfs vfs(DefaultVfs());
    vfs.Arm({1, FaultInjectingVfs::FaultKind::kShortWrite, false});
    auto file = vfs.OpenTrunc(dir + "/short");
    ASSERT_TRUE(file.ok());
    Status appended = (*file)->Append(payload);
    EXPECT_EQ(appended.code(), StatusCode::kIoError);
    EXPECT_EQ(DefaultVfs().FileSize(dir + "/short").value(),
              payload.size() / 2);
  }
  {
    // ENOSPC: kResourceExhausted, nothing written.
    FaultInjectingVfs vfs(DefaultVfs());
    vfs.Arm({1, FaultInjectingVfs::FaultKind::kEnospc, false});
    auto file = vfs.OpenTrunc(dir + "/nospace");
    ASSERT_TRUE(file.ok());
    EXPECT_EQ((*file)->Append(payload).code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(DefaultVfs().FileSize(dir + "/nospace").value(), 0u);
  }
  {
    // fsync failure fires only on Sync — the Append before it passes.
    FaultInjectingVfs vfs(DefaultVfs());
    vfs.Arm({1, FaultInjectingVfs::FaultKind::kFsyncFail, false});
    auto file = vfs.OpenTrunc(dir + "/fsync");
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(payload).ok());
    EXPECT_EQ((*file)->Sync().code(), StatusCode::kIoError);
    EXPECT_EQ(vfs.sync_calls(), 1u);
  }
  {
    // Crash at syscall N: a torn write, then everything — reads included —
    // is kUnavailable until Reset.
    FaultInjectingVfs vfs(DefaultVfs());
    vfs.Arm({2, FaultInjectingVfs::FaultKind::kCrash, false});
    auto file = vfs.OpenTrunc(dir + "/crash");
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(payload).ok());
    EXPECT_EQ((*file)->Append(payload).code(), StatusCode::kUnavailable);
    EXPECT_TRUE(vfs.crashed());
    EXPECT_EQ(vfs.ReadAll(dir + "/crash").status().code(),
              StatusCode::kUnavailable);
    EXPECT_FALSE(vfs.Exists(dir + "/crash"));
    // Half of the second append landed after the first full one.
    EXPECT_EQ(DefaultVfs().FileSize(dir + "/crash").value(),
              payload.size() + payload.size() / 2);
    vfs.Reset();
    EXPECT_FALSE(vfs.crashed());
    EXPECT_TRUE(vfs.Exists(dir + "/crash"));
  }
  {
    // A transient fault disarms after firing once.
    FaultInjectingVfs vfs(DefaultVfs());
    vfs.Arm({1, FaultInjectingVfs::FaultKind::kEio, true});
    auto file = vfs.OpenTrunc(dir + "/transient");
    ASSERT_TRUE(file.ok());
    EXPECT_EQ((*file)->Append(payload).code(), StatusCode::kIoError);
    EXPECT_TRUE((*file)->Append(payload).ok());
  }
  RemoveTree(dir);
}

TEST(DurabilityVfs, WalRetriesTransientCommitFailure) {
  std::string dir = TempDirPath("vfs-retry");
  RemoveTree(dir);
  ASSERT_TRUE(DefaultVfs().CreateDirs(dir).ok());
  FaultInjectingVfs vfs(DefaultVfs());

  WalOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = std::chrono::microseconds{0};
  const std::string path = dir + "/journal.wal";
  Result<WriteAheadLog> wal = WriteAheadLog::Open(vfs, path, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  const std::uint64_t committed = wal->committed_bytes();

  // A short write tears the next commit mid-frame; the retry truncates the
  // garbage back to the committed prefix and rewrites the whole group.
  vfs.Arm({vfs.write_ops() + 1, FaultInjectingVfs::FaultKind::kShortWrite,
           /*transient=*/true});
  ASSERT_TRUE(wal->Append(SampleInsert()).ok());
  EXPECT_GT(wal->committed_bytes(), committed);

  Result<WalReadResult> read = ReadWal(vfs, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_FALSE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, wal->committed_bytes());
  RemoveTree(dir);
}

// --- Sync-policy boundaries ----------------------------------------------

TEST(DurabilityWalSyncPolicy, EveryNCommitsWithNOneMatchesEveryCommit) {
  std::string dir = TempDirPath("sync-n1");
  RemoveTree(dir);
  ASSERT_TRUE(DefaultVfs().CreateDirs(dir).ok());

  auto count_syncs = [&](const WalOptions& options, const char* name) {
    FaultInjectingVfs vfs(DefaultVfs());
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(vfs, dir + "/" + name, options);
    EXPECT_TRUE(wal.ok());
    for (int i = 0; i < 9; ++i) EXPECT_TRUE(wal->Append(SampleInsert()).ok());
    return vfs.sync_calls();
  };

  WalOptions every;
  every.sync = WalSyncPolicy::kEveryCommit;
  WalOptions n_one;
  n_one.sync = WalSyncPolicy::kEveryNCommits;
  n_one.sync_interval = 1;
  EXPECT_EQ(count_syncs(n_one, "n1.wal"), count_syncs(every, "every.wal"));
  EXPECT_EQ(count_syncs(n_one, "n1b.wal"), 9u);
  RemoveTree(dir);
}

TEST(DurabilityWalSyncPolicy, EveryNCommitsTailIsAtMostNMinusOneGroups) {
  std::string dir = TempDirPath("sync-n4");
  RemoveTree(dir);
  ASSERT_TRUE(DefaultVfs().CreateDirs(dir).ok());
  FaultInjectingVfs vfs(DefaultVfs());

  WalOptions options;
  options.sync = WalSyncPolicy::kEveryNCommits;
  options.sync_interval = 4;
  Result<WriteAheadLog> wal =
      WriteAheadLog::Open(vfs, dir + "/n4.wal", options);
  ASSERT_TRUE(wal.ok());
  for (int commit = 1; commit <= 11; ++commit) {
    ASSERT_TRUE(wal->Append(SampleInsert()).ok());
    // After k commits, exactly floor(k/N) syncs happened — equivalently,
    // the un-fsynced tail never exceeds N-1 commit groups.
    EXPECT_EQ(vfs.sync_calls(), static_cast<std::uint64_t>(commit / 4))
        << "after commit " << commit;
  }
  RemoveTree(dir);
}

// --- Recovery edge cases --------------------------------------------------

TEST(DurabilityRecoveryEdges, EmptyJournalFileRecoversSnapshotOnly) {
  std::string dir = TempDirPath("edge-empty");
  RemoveTree(dir);
  std::string snapshot_digest;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
    snapshot_digest = StateDigest(store->document());
  }
  std::error_code ec;
  fs::resize_file(DurableDocumentStore::JournalPath(dir, 0), 0, ec);
  ASSERT_FALSE(ec);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->recovery_stats().inserts_applied, 0u);
  EXPECT_EQ(StateDigest(store->document()), snapshot_digest);
  RemoveTree(dir);
}

TEST(DurabilityRecoveryEdges, JournalTruncatedInsideMagicRecovers) {
  std::string dir = TempDirPath("edge-magic");
  RemoveTree(dir);
  std::string snapshot_digest;
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_TRUE(store->AppendChild(scenes[0], "extra").ok());
    ASSERT_TRUE(store->Flush().ok());
    snapshot_digest = StateDigest(store->document());
  }
  // Chop the file inside the 8-byte magic: nothing in it is trustworthy,
  // and recovery must fall back to the snapshot alone — cleanly.
  std::error_code ec;
  fs::resize_file(DurableDocumentStore::JournalPath(dir, 0), 4, ec);
  ASSERT_FALSE(ec);

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->recovery_stats().tail_truncated);
  EXPECT_EQ(store->recovery_stats().bytes_dropped, 4u);
  EXPECT_EQ(store->recovery_stats().inserts_applied, 0u);
  EXPECT_NE(StateDigest(store->document()), snapshot_digest);  // op lost
  // The journal was reinitialized; further work persists.
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "post").ok());
  ASSERT_TRUE(store->Flush().ok());
  RemoveTree(dir);
}

TEST(DurabilityRecoveryEdges, ManifestPointingAtMissingSnapshotIsTyped) {
  std::string dir = TempDirPath("edge-missing");
  RemoveTree(dir);
  {
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml());
    ASSERT_TRUE(store.ok());
  }
  ASSERT_TRUE(
      DefaultVfs().Unlink(DurableDocumentStore::SnapshotPath(dir, 0)).ok());

  Result<DurableDocumentStore> store = DurableDocumentStore::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
  EXPECT_NE(store.status().message().find("neither a snapshot nor a delta"),
            std::string::npos);
  RemoveTree(dir);
}

// --- Quarantine on journaling failures -----------------------------------

struct QuarantineFixture {
  std::string dir;
  FaultInjectingVfs vfs{DefaultVfs()};
  DurableDocumentStore::Options options;

  explicit QuarantineFixture(const char* name) : dir(TempDirPath(name)) {
    RemoveTree(dir);
    options.vfs = &vfs;
  }
  Result<DurableDocumentStore> CreateStore() {
    return DurableDocumentStore::Create(dir, SmallPlayXml(), options);
  }
};

TEST(DurabilityQuarantine, JournalEioQuarantinesAndRollsBack) {
  QuarantineFixture fx("quarantine-eio");
  Result<DurableDocumentStore> store = fx.CreateStore();
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "pre").ok());
  const std::string durable_digest = StateDigest(store->document());

  fx.vfs.Arm({fx.vfs.write_ops() + 1, FaultInjectingVfs::FaultKind::kEio,
              /*transient=*/false});
  Result<NodeId> failed = store->AppendChild(scenes[0], "doomed");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store->quarantined());
  EXPECT_NE(store->quarantine_reason().message().find("quarantined"),
            std::string::npos);

  // The un-journaled op was rolled back: queries serve the last durable
  // state, bit-identical to what a restart will recover.
  EXPECT_EQ(StateDigest(store->document()), durable_digest);
  EXPECT_TRUE(store->Query("//speech").ok());
  EXPECT_EQ(store->Query("//doomed").value().size(), 0u);

  // Everything that writes is refused with the quarantine status.
  EXPECT_EQ(store->AppendChild(scenes[0], "more").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(store->Delete(scenes[0]).code(), StatusCode::kUnavailable);
  EXPECT_EQ(store->Flush().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store->Checkpoint().code(), StatusCode::kUnavailable);

  // A clean reopen recovers exactly the durable state and is writable.
  fx.vfs.Reset();
  store = DurableDocumentStore::Open(fx.dir, fx.options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(store->quarantined());
  EXPECT_EQ(StateDigest(store->document()), durable_digest);
  scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "after").ok());
  ASSERT_TRUE(store->Flush().ok());
  RemoveTree(fx.dir);
}

TEST(DurabilityQuarantine, EnospcQuarantinesWithResourceCause) {
  QuarantineFixture fx("quarantine-enospc");
  Result<DurableDocumentStore> store = fx.CreateStore();
  ASSERT_TRUE(store.ok());
  const std::string durable_digest = StateDigest(store->document());
  std::vector<NodeId> scenes = store->Query("//scene").value();

  fx.vfs.Arm({fx.vfs.write_ops() + 1, FaultInjectingVfs::FaultKind::kEnospc,
              /*transient=*/false});
  Result<NodeId> failed = store->AppendChild(scenes[0], "doomed");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status().message().find("ENOSPC"), std::string::npos);
  EXPECT_TRUE(store->quarantined());
  EXPECT_EQ(StateDigest(store->document()), durable_digest);

  fx.vfs.Reset();
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(fx.dir, fx.options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(StateDigest(reopened->document()), durable_digest);
  RemoveTree(fx.dir);
}

TEST(DurabilityQuarantine, FsyncFailureUnderEveryCommitQuarantines) {
  QuarantineFixture fx("quarantine-fsync");
  fx.options.wal.sync = WalSyncPolicy::kEveryCommit;
  Result<DurableDocumentStore> store = fx.CreateStore();
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "pre").ok());

  fx.vfs.Arm({fx.vfs.write_ops() + 1,
              FaultInjectingVfs::FaultKind::kFsyncFail,
              /*transient=*/false});
  Result<NodeId> failed = store->AppendChild(scenes[0], "unsynced");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store->quarantined());

  // fsync failed after the frames hit the OS, so the op IS part of the
  // committed prefix: the rolled-back state and a clean reopen must agree
  // (no silent divergence) — both include the write whose durability the
  // store could no longer vouch for.
  const std::string quarantined_digest = StateDigest(store->document());
  fx.vfs.Reset();
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(fx.dir, fx.options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), quarantined_digest);
  RemoveTree(fx.dir);
}

TEST(DurabilityQuarantine, CrashMidAppendQuarantinesAndRecoversOnReopen) {
  QuarantineFixture fx("quarantine-crash");
  Result<DurableDocumentStore> store = fx.CreateStore();
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "pre").ok());
  const std::string durable_digest = StateDigest(store->document());

  fx.vfs.Arm({fx.vfs.write_ops() + 1, FaultInjectingVfs::FaultKind::kCrash,
              /*transient=*/false});
  Result<NodeId> failed = store->AppendChild(scenes[0], "torn");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store->quarantined());
  // Rollback could not read the durable files (the "process" is dead), so
  // the reason says the in-memory state may be ahead.
  EXPECT_NE(store->quarantine_reason().message().find("may be ahead"),
            std::string::npos);
  EXPECT_EQ(store->AppendChild(scenes[0], "x").status().code(),
            StatusCode::kUnavailable);

  // Restart: the torn half-frame is truncated away and the durable state
  // comes back intact.
  fx.vfs.Reset();
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(fx.dir, fx.options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), durable_digest);
  EXPECT_EQ(reopened->Query("//torn").value().size(), 0u);
  RemoveTree(fx.dir);
}

TEST(DurabilityQuarantine, CheckpointFailureBeforePublishLeavesStoreLive) {
  QuarantineFixture fx("checkpoint-fail");
  Result<DurableDocumentStore> store = fx.CreateStore();
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "pre").ok());

  // Fail the MANIFEST rename — the last step before the new epoch becomes
  // authoritative. Ordinals within Checkpoint: journal fsync (1), delta
  // write+sync (2,3), new journal header (4), manifest tmp write+sync
  // (5,6), rename (7).
  fx.vfs.Arm({fx.vfs.write_ops() + 7, FaultInjectingVfs::FaultKind::kEio,
              /*transient=*/true});
  Status checkpointed = store->Checkpoint();
  EXPECT_EQ(checkpointed.code(), StatusCode::kIoError);

  // Not a durability breach: the old epoch is still authoritative and the
  // store keeps accepting work.
  EXPECT_FALSE(store->quarantined());
  EXPECT_EQ(store->epoch(), 0u);
  ASSERT_TRUE(store->AppendChild(scenes[0], "alive").ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->epoch(), 1u);
  ASSERT_TRUE(store->Flush().ok());
  const std::string live_digest = StateDigest(store->document());

  // Reopen sweeps whatever debris the failed attempt left behind.
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(fx.dir, fx.options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), live_digest);
  EXPECT_FALSE(DefaultVfs().Exists(fx.dir + "/MANIFEST.tmp"));
  RemoveTree(fx.dir);
}

// --- Delta checkpoints ----------------------------------------------------

TEST(DurabilityDelta, DeltaCheckpointReopensBitIdentical) {
  std::string dir = TempDirPath("delta-basic");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> speeches = store->Query("//speech").value();
  ASSERT_GE(speeches.size(), 3u);
  ASSERT_TRUE(store->InsertAfter(speeches[0], "speech").ok());
  ASSERT_TRUE(store->Delete(speeches[1]).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->epoch(), 1u);
  EXPECT_EQ(store->delta_chain_length(), 1);

  // Epoch 1 is a delta chained to the epoch-0 snapshot; the base snapshot
  // stays (the delta needs it) but its journal retires.
  EXPECT_TRUE(fs::exists(DurableDocumentStore::DeltaPath(dir, 1)));
  EXPECT_FALSE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 1)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  EXPECT_FALSE(fs::exists(DurableDocumentStore::JournalPath(dir, 0)));

  // Post-checkpoint mutations land in the new journal.
  speeches = store->Query("//speech").value();
  ASSERT_TRUE(store->Wrap(speeches[0], "aside").ok());
  ASSERT_TRUE(store->Flush().ok());
  const std::string live_digest = StateDigest(store->document());

  Result<DurableDocumentStore> reopened = DurableDocumentStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->epoch(), 1u);
  EXPECT_EQ(reopened->delta_chain_length(), 1);
  EXPECT_EQ(StateDigest(reopened->document()), live_digest);
  RemoveTree(dir);
}

TEST(DurabilityDelta, ChainCompactsIntoFullSnapshotAtMaxLength) {
  std::string dir = TempDirPath("delta-chain");
  RemoveTree(dir);
  DurableDocumentStore::Options options;
  options.max_delta_chain = 2;
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml(), options);
  ASSERT_TRUE(store.ok());

  for (int round = 1; round <= 3; ++round) {
    std::vector<NodeId> scenes = store->Query("//scene").value();
    ASSERT_TRUE(store->AppendChild(scenes[0], "note").ok());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // Epochs 1 and 2 were deltas; epoch 3 hit the chain cap and compacted.
  EXPECT_EQ(store->epoch(), 3u);
  EXPECT_EQ(store->delta_chain_length(), 0);
  EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 3)));
  // The full snapshot made the whole old chain unreachable.
  EXPECT_FALSE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  EXPECT_FALSE(fs::exists(DurableDocumentStore::DeltaPath(dir, 1)));
  EXPECT_FALSE(fs::exists(DurableDocumentStore::DeltaPath(dir, 2)));

  const std::string live_digest = StateDigest(store->document());
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(StateDigest(reopened->document()), live_digest);
  RemoveTree(dir);
}

TEST(DurabilityDelta, DeltaAndFullCheckpointsRecoverIdentically) {
  auto run = [](const char* name, bool deltas) {
    std::string dir = TempDirPath(name);
    RemoveTree(dir);
    DurableDocumentStore::Options options;
    options.delta_checkpoints = deltas;
    Result<DurableDocumentStore> store =
        DurableDocumentStore::Create(dir, SmallPlayXml(), options);
    EXPECT_TRUE(store.ok());
    std::mt19937 rng(777);
    for (int i = 0; i < 18; ++i) {
      std::vector<NodeId> elements =
          NonRootElements(store->document().tree());
      NodeId anchor = elements[rng() % elements.size()];
      switch (rng() % 4) {
        case 0: EXPECT_TRUE(store->InsertBefore(anchor, "ib").ok()); break;
        case 1: EXPECT_TRUE(store->InsertAfter(anchor, "ia").ok()); break;
        case 2: EXPECT_TRUE(store->AppendChild(anchor, "ac").ok()); break;
        case 3: EXPECT_TRUE(store->Wrap(anchor, "wr").ok()); break;
      }
      if (i % 5 == 4) {
        EXPECT_TRUE(store->Checkpoint().ok());
      }
    }
    EXPECT_TRUE(store->Flush().ok());
    Result<DurableDocumentStore> reopened =
        DurableDocumentStore::Open(dir, options);
    EXPECT_TRUE(reopened.ok());
    std::string live = StateDigest(store->document());
    std::string recovered = StateDigest(reopened->document());
    EXPECT_EQ(live, recovered);
    RemoveTree(dir);
    return live;
  };
  // Same workload, same RNG: the storage strategy must be invisible.
  EXPECT_EQ(run("delta-vs-full-a", true), run("delta-vs-full-b", false));
}

TEST(DurabilityDelta, ScRelabelHeavyWorkloadSurvivesDeltaCheckpoints) {
  // InsertBefore at a group's head and Wrap both drive SC rewrites that
  // can replace self-labels (ReplaceSelf relabels whole subtrees) — the
  // hardest case for delta change detection, since rows change without
  // their nodes moving.
  std::string dir = TempDirPath("delta-screlabel");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::mt19937 rng(4242);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 6; ++i) {
      std::vector<NodeId> elements =
          NonRootElements(store->document().tree());
      NodeId anchor = elements[rng() % elements.size()];
      if (i % 2 == 0) {
        ASSERT_TRUE(store->InsertBefore(anchor, "head").ok());
      } else {
        ASSERT_TRUE(store->Wrap(anchor, "wrap").ok());
      }
    }
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const std::string live_digest = StateDigest(store->document());

  Result<DurableDocumentStore> reopened = DurableDocumentStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), live_digest);
  RemoveTree(dir);
}

TEST(DurabilityDelta, DeltaIsMuchSmallerThanFullSnapshotForSparseChanges) {
  PlayOptions play;
  play.acts = 6;
  play.scenes_per_act = 5;
  play.min_speeches_per_scene = 4;
  play.max_speeches_per_scene = 8;
  play.seed = 3;
  std::string dir = TempDirPath("delta-size");
  RemoveTree(dir);
  Result<DurableDocumentStore> store = DurableDocumentStore::Create(
      dir, SerializeXml(GeneratePlay("big", play)));
  ASSERT_TRUE(store.ok());
  // A handful of localized edits in a document of hundreds of nodes.
  std::vector<NodeId> speeches = store->Query("//speech").value();
  ASSERT_GE(speeches.size(), 60u);
  ASSERT_TRUE(store->AppendChild(speeches[3], "line").ok());
  ASSERT_TRUE(store->InsertAfter(speeches[10], "speech").ok());
  ASSERT_TRUE(store->Delete(speeches[40]).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(fs::exists(DurableDocumentStore::DeltaPath(dir, 1)));

  const std::uint64_t snapshot_bytes =
      fs::file_size(DurableDocumentStore::SnapshotPath(dir, 0));
  const std::uint64_t delta_bytes =
      fs::file_size(DurableDocumentStore::DeltaPath(dir, 1));
  // Checkpoint cost tracks mutation volume, not document size.
  EXPECT_LT(delta_bytes * 4, snapshot_bytes)
      << "delta " << delta_bytes << "B vs snapshot " << snapshot_bytes
      << "B";
  RemoveTree(dir);
}

// --- Epoch pins (single-threaded lifecycle; concurrency lives in
// epoch_concurrency_test.cc) ----------------------------------------------

TEST(EpochPinning, PinnedReaderSeesFrozenViewWhileWriterAdvances) {
  std::string dir = TempDirPath("pin-frozen");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "pinned").ok());
  const std::string pin_digest = StateDigest(store->document());

  Result<Snapshot> snap = store->OpenSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap->valid());
  EXPECT_EQ(snap->epoch(), 0u);
  EXPECT_EQ(snap->journal_bytes(), store->durable_journal_bytes());

  // The writer moves on: more mutations and a checkpoint.
  ASSERT_TRUE(store->AppendChild(scenes[0], "later").ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->AppendChild(scenes[0], "latest").ok());
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_NE(StateDigest(store->document()), pin_digest);

  // The snapshot stays frozen at the committed prefix captured at open,
  // and queries evaluate against that frozen view.
  EXPECT_EQ(StateDigest(snap->document()), pin_digest);
  Result<std::vector<NodeId>> pinned = snap->Query("//pinned");
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->size(), 1u);
  EXPECT_TRUE(snap->Query("//later")->empty());

  // A default (never-opened) snapshot refuses queries with a typed error.
  Snapshot closed;
  EXPECT_FALSE(closed.valid());
  EXPECT_EQ(closed.Query("//scene").status().code(),
            StatusCode::kInvalidArgument);
  RemoveTree(dir);
}

TEST(EpochPinning, PinKeepsRetiredEpochFilesUntilRelease) {
  std::string dir = TempDirPath("pin-retire");
  RemoveTree(dir);
  DurableDocumentStore::Options options;
  options.delta_checkpoints = false;  // full checkpoint normally drops e0
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml(), options);
  ASSERT_TRUE(store.ok());
  const std::string pin_digest = StateDigest(store->document());
  Result<Snapshot> snap = store->OpenSnapshot();
  ASSERT_TRUE(snap.ok());

  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "next").ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->epoch(), 1u);

  // The snapshot's pin is the only thing keeping epoch 0 alive.
  EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::JournalPath(dir, 0)));
  EXPECT_EQ(StateDigest(snap->document()), pin_digest);

  // Dropping the snapshot retires them.
  snap.value() = Snapshot();
  EXPECT_FALSE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  EXPECT_FALSE(fs::exists(DurableDocumentStore::JournalPath(dir, 0)));
  RemoveTree(dir);
}

TEST(EpochPinning, PinOnDeltaEpochReadsThroughChain) {
  std::string dir = TempDirPath("pin-delta");
  RemoveTree(dir);
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml());
  ASSERT_TRUE(store.ok());
  std::vector<NodeId> scenes = store->Query("//scene").value();
  ASSERT_TRUE(store->AppendChild(scenes[0], "one").ok());
  ASSERT_TRUE(store->Checkpoint().ok());  // epoch 1, a delta
  ASSERT_TRUE(store->AppendChild(scenes[0], "two").ok());
  ASSERT_TRUE(store->Flush().ok());
  const std::string pin_digest = StateDigest(store->document());

  Result<Snapshot> snap = store->OpenSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->epoch(), 1u);
  ASSERT_TRUE(store->AppendChild(scenes[0], "three").ok());
  ASSERT_TRUE(store->Checkpoint().ok());  // epoch 2
  EXPECT_EQ(StateDigest(snap->document()), pin_digest);

  // The snapshot materialized through the (now superseded) delta chain —
  // epoch 1's delta over epoch 0's full snapshot plus the committed
  // journal prefix — and the pin keeps that whole chain on disk while the
  // view lives.
  EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::DeltaPath(dir, 1)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::JournalPath(dir, 1)));

  // Dropping the snapshot retires what only the pin kept alive: epoch 1's
  // journal. The epoch-1 delta (and epoch-0 base) stay — epoch 2's delta
  // chains through them, so they are reachable from the live epoch.
  snap.value() = Snapshot();
  EXPECT_FALSE(fs::exists(DurableDocumentStore::JournalPath(dir, 1)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::DeltaPath(dir, 1)));
  EXPECT_TRUE(fs::exists(DurableDocumentStore::SnapshotPath(dir, 0)));
  RemoveTree(dir);
}

// --- Deterministic fault matrix ------------------------------------------

/// One cell of the fault matrix: create a store over an injector, run a
/// mixed workload with periodic checkpoints while one fault is armed, then
/// prove there was no crash and no silent divergence.
void RunFaultMatrixCell(FaultInjectingVfs::FaultKind kind,
                        std::uint64_t ordinal, unsigned seed,
                        const std::string& dir) {
  SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
               " ordinal=" + std::to_string(ordinal) +
               " seed=" + std::to_string(seed));
  RemoveTree(dir);
  FaultInjectingVfs vfs(DefaultVfs());
  DurableDocumentStore::Options options;
  options.vfs = &vfs;
  // Syncs in the op stream (so kFsyncFail has targets) without syncing
  // every commit.
  options.wal.sync = WalSyncPolicy::kEveryNCommits;
  options.wal.sync_interval = 3;
  Result<DurableDocumentStore> store =
      DurableDocumentStore::Create(dir, SmallPlayXml(), options);
  ASSERT_TRUE(store.ok());

  vfs.Arm({ordinal, kind, /*transient=*/false});
  std::mt19937 rng(seed);
  for (int i = 0; i < 24 && !store->quarantined(); ++i) {
    std::vector<NodeId> elements = NonRootElements(store->document().tree());
    NodeId anchor = elements[rng() % elements.size()];
    // Failures are allowed (that is the point); crashes and divergence are
    // not.
    switch (rng() % 4) {
      case 0: (void)store->InsertBefore(anchor, "ib"); break;
      case 1: (void)store->InsertAfter(anchor, "ia"); break;
      case 2: (void)store->AppendChild(anchor, "ac"); break;
      case 3: (void)store->Wrap(anchor, "wr"); break;
    }
    if (i % 5 == 4) (void)store->Checkpoint();
  }

  if (vfs.crashed()) {
    // Simulated process death: the only promise is that restart recovers a
    // consistent store.
    vfs.Reset();
    Result<DurableDocumentStore> reopened =
        DurableDocumentStore::Open(dir, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(reopened->Query("//speech").ok());
    RemoveTree(dir);
    return;
  }

  if (!store->quarantined()) {
    Status flushed = store->Flush();
    if (!flushed.ok()) {
      EXPECT_TRUE(store->quarantined());
    }
  }
  // Whether healthy or quarantined-and-rolled-back, the in-memory document
  // must now equal what a restart recovers: zero silent divergence.
  const std::string live_digest = StateDigest(store->document());
  vfs.Reset();
  Result<DurableDocumentStore> reopened =
      DurableDocumentStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateDigest(reopened->document()), live_digest);
  RemoveTree(dir);
}

TEST(DurabilityFaultMatrix, SeedSweep) {
  unsigned seed = 1;
  if (const char* env = std::getenv("PRIMELABEL_FAULT_SEED")) {
    seed = static_cast<unsigned>(std::atoi(env));
    if (seed == 0) seed = 1;
  }
  const FaultInjectingVfs::FaultKind kinds[] = {
      FaultInjectingVfs::FaultKind::kShortWrite,
      FaultInjectingVfs::FaultKind::kEio,
      FaultInjectingVfs::FaultKind::kEnospc,
      FaultInjectingVfs::FaultKind::kFsyncFail,
      FaultInjectingVfs::FaultKind::kCrash,
  };
  std::string dir = TempDirPath("fault-matrix");
  for (FaultInjectingVfs::FaultKind kind : kinds) {
    for (int k = 0; k < 10; ++k) {
      // Quadratic spread: early ordinals probe Create/first-op edges,
      // later ones land inside checkpoints and the workload tail.
      const std::uint64_t ordinal = seed + static_cast<std::uint64_t>(k) * k;
      RunFaultMatrixCell(kind, ordinal, seed * 100 + k, dir);
    }
  }
}

}  // namespace
}  // namespace primelabel
