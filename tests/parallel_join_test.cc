// Parallel batched-join determinism. The worker fan-out of JoinBatched
// (store/plan.cc) and the oracle-internal batch sharding
// (StructureOracle::set_query_workers) are pure speed knobs: shards cover
// contiguous index ranges and write disjoint output slots, so the result
// — values and ordering — must be bit-identical to the sequential run at
// every worker count, on a live OrderedPrimeScheme and on a LoadedCatalog
// alike. These tests pin that down on a mixed-depth fixture big enough
// (>= 1024 items per batch) to actually cross the sharding threshold.
//
// Together with parallel_labeling_test this is the TSan target: configure
// with -DPRIMELABEL_SANITIZE=thread and run `ctest -R Parallel` to
// race-check every fan-out in the repo.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ordered_prime_scheme.h"
#include "corpus/labeled_document.h"
#include "store/catalog.h"
#include "store/plan.h"
#include "util/rng.h"
#include "xml/shakespeare.h"

namespace primelabel {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 3, 8};

/// Shakespeare corpus with deep element chains grafted under its acts, so
/// batches mix 1-3 limb corpus labels with multi-limb chain labels (the
/// shape that exercises both the fingerprint reject path and real
/// divisions inside every shard).
XmlTree DeepTree() {
  XmlTree tree = GenerateShakespeareCorpus(1);
  std::vector<NodeId> acts = tree.FindAll("act");
  constexpr int kChainDepths[] = {30, 45, 60};
  for (std::size_t c = 0; c < std::size(kChainDepths); ++c) {
    NodeId at = acts[c % acts.size()];
    for (int d = 0; d < kChainDepths[c]; ++d) {
      at = tree.AppendChild(at, "deep");
    }
  }
  return tree;
}

/// Anchor-ish context plus a candidate pool well past the 512-items-per-
/// worker sharding floor.
struct JoinInputs {
  std::vector<NodeId> context;
  std::vector<NodeId> candidates;
};

JoinInputs MakeInputs(const std::vector<NodeId>& nodes, Rng& rng) {
  JoinInputs in;
  for (int i = 0; i < 12; ++i) {
    in.context.push_back(nodes[rng.Below(nodes.size())]);
  }
  for (int i = 0; i < 2048; ++i) {
    in.candidates.push_back(nodes[rng.Below(nodes.size())]);
  }
  return in;
}

TEST(ParallelJoin, JoinDescendantsWorkersBitIdentical) {
  XmlTree tree = DeepTree();
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(tree);
  Rng rng(501);
  JoinInputs in = MakeInputs(tree.PreorderNodes(), rng);
  QueryContext ctx;
  ctx.oracle = &scheme;
  ctx.num_workers = 1;
  const std::vector<NodeId> sequential =
      JoinDescendants(ctx, in.context, in.candidates);
  EXPECT_FALSE(sequential.empty());  // the fixture must exercise matches
  for (int workers : kWorkerCounts) {
    ctx.num_workers = workers;
    EXPECT_EQ(JoinDescendants(ctx, in.context, in.candidates), sequential)
        << "workers=" << workers;
  }
}

TEST(ParallelJoin, JoinAncestorsWorkersBitIdentical) {
  XmlTree tree = DeepTree();
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(tree);
  Rng rng(503);
  JoinInputs in = MakeInputs(tree.PreorderNodes(), rng);
  QueryContext ctx;
  ctx.oracle = &scheme;
  ctx.num_workers = 1;
  const std::vector<NodeId> sequential =
      JoinAncestors(ctx, in.context, in.candidates);
  EXPECT_FALSE(sequential.empty());
  for (int workers : kWorkerCounts) {
    ctx.num_workers = workers;
    EXPECT_EQ(JoinAncestors(ctx, in.context, in.candidates), sequential)
        << "workers=" << workers;
  }
}

TEST(ParallelJoin, OracleBatchShardingBitIdentical) {
  XmlTree tree = DeepTree();
  OrderedPrimeScheme scheme(/*sc_group_size=*/5);
  scheme.LabelTree(tree);
  std::vector<NodeId> nodes = tree.PreorderNodes();
  Rng rng(505);
  // >= 1024 pairs so two or more shards actually form.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 4096; ++i) {
    pairs.emplace_back(nodes[rng.Below(nodes.size())],
                       nodes[rng.Below(nodes.size())]);
  }
  std::vector<NodeId> candidates;
  for (int i = 0; i < 2048; ++i) {
    candidates.push_back(nodes[rng.Below(nodes.size())]);
  }
  const NodeId anchor = nodes[nodes.size() / 3];

  scheme.set_query_workers(1);
  std::vector<std::uint8_t> batch_seq;
  scheme.IsAncestorBatch(pairs, &batch_seq);
  std::vector<NodeId> desc_seq, anc_seq;
  scheme.SelectDescendants(anchor, candidates, &desc_seq);
  scheme.SelectAncestors(anchor, candidates, &anc_seq);

  for (int workers : kWorkerCounts) {
    scheme.set_query_workers(workers);
    std::vector<std::uint8_t> batch;
    scheme.IsAncestorBatch(pairs, &batch);
    EXPECT_EQ(batch, batch_seq) << "workers=" << workers;
    std::vector<NodeId> desc, anc;
    scheme.SelectDescendants(anchor, candidates, &desc);
    EXPECT_EQ(desc, desc_seq) << "workers=" << workers;
    scheme.SelectAncestors(anchor, candidates, &anc);
    EXPECT_EQ(anc, anc_seq) << "workers=" << workers;
  }
  scheme.set_query_workers(1);
}

TEST(ParallelJoin, CatalogJoinWorkersBitIdentical) {
  LabeledDocument doc = LabeledDocument::FromTree(DeepTree());
  const std::string path =
      std::string(::testing::TempDir()) + "/parallel_join_suite.plc";
  ASSERT_TRUE(doc.Save(path).ok());
  Result<LoadedCatalog> loaded = LoadCatalog(DefaultVfs(), path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  LoadedCatalog catalog = std::move(loaded.value());

  // Catalog NodeIds are preorder row indices.
  const NodeId row_count = static_cast<NodeId>(catalog.rows().size());
  Rng rng(507);
  JoinInputs in;
  for (int i = 0; i < 12; ++i) {
    in.context.push_back(static_cast<NodeId>(rng.Below(row_count)));
  }
  for (int i = 0; i < 2048; ++i) {
    in.candidates.push_back(static_cast<NodeId>(rng.Below(row_count)));
  }
  QueryContext ctx;
  ctx.oracle = &catalog;
  ctx.num_workers = 1;
  const std::vector<NodeId> desc_seq =
      JoinDescendants(ctx, in.context, in.candidates);
  const std::vector<NodeId> anc_seq =
      JoinAncestors(ctx, in.context, in.candidates);
  EXPECT_FALSE(desc_seq.empty());
  for (int workers : kWorkerCounts) {
    ctx.num_workers = workers;
    EXPECT_EQ(JoinDescendants(ctx, in.context, in.candidates), desc_seq)
        << "workers=" << workers;
    EXPECT_EQ(JoinAncestors(ctx, in.context, in.candidates), anc_seq)
        << "workers=" << workers;
  }

  // Oracle-internal sharding on the catalog, too.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 2048; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Below(row_count)),
                       static_cast<NodeId>(rng.Below(row_count)));
  }
  catalog.set_query_workers(1);
  std::vector<std::uint8_t> batch_seq;
  catalog.IsAncestorBatch(pairs, &batch_seq);
  for (int workers : kWorkerCounts) {
    catalog.set_query_workers(workers);
    std::vector<std::uint8_t> batch;
    catalog.IsAncestorBatch(pairs, &batch);
    EXPECT_EQ(batch, batch_seq) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace primelabel
