# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/primes_test[1]_include.cmake")
include("/root/repo/build/tests/xml_tree_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/crt_test[1]_include.cmake")
include("/root/repo/build/tests/sc_table_test[1]_include.cmake")
include("/root/repo/build/tests/ordered_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/path_combine_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/sizemodel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/decomposed_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/document_store_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sql_translate_test[1]_include.cmake")
include("/root/repo/build/tests/dataguide_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/labeled_document_test[1]_include.cmake")
include("/root/repo/build/tests/sax_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/bigint_vectors_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
