# Empty compiler generated dependencies file for sql_translate_test.
# This may be replaced when dependencies are built.
