file(REMOVE_RECURSE
  "CMakeFiles/sql_translate_test.dir/sql_translate_test.cc.o"
  "CMakeFiles/sql_translate_test.dir/sql_translate_test.cc.o.d"
  "sql_translate_test"
  "sql_translate_test.pdb"
  "sql_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
