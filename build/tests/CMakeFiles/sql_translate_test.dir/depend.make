# Empty dependencies file for sql_translate_test.
# This may be replaced when dependencies are built.
