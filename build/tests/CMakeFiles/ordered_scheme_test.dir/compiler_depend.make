# Empty compiler generated dependencies file for ordered_scheme_test.
# This may be replaced when dependencies are built.
