file(REMOVE_RECURSE
  "CMakeFiles/ordered_scheme_test.dir/ordered_scheme_test.cc.o"
  "CMakeFiles/ordered_scheme_test.dir/ordered_scheme_test.cc.o.d"
  "ordered_scheme_test"
  "ordered_scheme_test.pdb"
  "ordered_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
