# Empty dependencies file for dataguide_test.
# This may be replaced when dependencies are built.
