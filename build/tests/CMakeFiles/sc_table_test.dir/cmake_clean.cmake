file(REMOVE_RECURSE
  "CMakeFiles/sc_table_test.dir/sc_table_test.cc.o"
  "CMakeFiles/sc_table_test.dir/sc_table_test.cc.o.d"
  "sc_table_test"
  "sc_table_test.pdb"
  "sc_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
