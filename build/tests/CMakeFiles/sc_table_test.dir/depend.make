# Empty dependencies file for sc_table_test.
# This may be replaced when dependencies are built.
