file(REMOVE_RECURSE
  "CMakeFiles/bigint_vectors_test.dir/bigint_vectors_test.cc.o"
  "CMakeFiles/bigint_vectors_test.dir/bigint_vectors_test.cc.o.d"
  "bigint_vectors_test"
  "bigint_vectors_test.pdb"
  "bigint_vectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
