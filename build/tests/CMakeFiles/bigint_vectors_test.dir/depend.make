# Empty dependencies file for bigint_vectors_test.
# This may be replaced when dependencies are built.
