# Empty dependencies file for path_combine_test.
# This may be replaced when dependencies are built.
