file(REMOVE_RECURSE
  "CMakeFiles/path_combine_test.dir/path_combine_test.cc.o"
  "CMakeFiles/path_combine_test.dir/path_combine_test.cc.o.d"
  "path_combine_test"
  "path_combine_test.pdb"
  "path_combine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_combine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
