# Empty dependencies file for sizemodel_test.
# This may be replaced when dependencies are built.
