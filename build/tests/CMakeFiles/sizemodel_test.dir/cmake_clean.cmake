file(REMOVE_RECURSE
  "CMakeFiles/sizemodel_test.dir/sizemodel_test.cc.o"
  "CMakeFiles/sizemodel_test.dir/sizemodel_test.cc.o.d"
  "sizemodel_test"
  "sizemodel_test.pdb"
  "sizemodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizemodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
