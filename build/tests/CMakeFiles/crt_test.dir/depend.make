# Empty dependencies file for crt_test.
# This may be replaced when dependencies are built.
