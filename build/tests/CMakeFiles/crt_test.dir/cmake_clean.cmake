file(REMOVE_RECURSE
  "CMakeFiles/crt_test.dir/crt_test.cc.o"
  "CMakeFiles/crt_test.dir/crt_test.cc.o.d"
  "crt_test"
  "crt_test.pdb"
  "crt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
