# Empty compiler generated dependencies file for decomposed_test.
# This may be replaced when dependencies are built.
