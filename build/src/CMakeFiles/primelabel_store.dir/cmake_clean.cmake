file(REMOVE_RECURSE
  "CMakeFiles/primelabel_store.dir/store/btree.cc.o"
  "CMakeFiles/primelabel_store.dir/store/btree.cc.o.d"
  "CMakeFiles/primelabel_store.dir/store/catalog.cc.o"
  "CMakeFiles/primelabel_store.dir/store/catalog.cc.o.d"
  "CMakeFiles/primelabel_store.dir/store/label_table.cc.o"
  "CMakeFiles/primelabel_store.dir/store/label_table.cc.o.d"
  "CMakeFiles/primelabel_store.dir/store/plan.cc.o"
  "CMakeFiles/primelabel_store.dir/store/plan.cc.o.d"
  "CMakeFiles/primelabel_store.dir/store/range_index.cc.o"
  "CMakeFiles/primelabel_store.dir/store/range_index.cc.o.d"
  "libprimelabel_store.a"
  "libprimelabel_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
