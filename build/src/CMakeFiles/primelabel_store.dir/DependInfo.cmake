
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/btree.cc" "src/CMakeFiles/primelabel_store.dir/store/btree.cc.o" "gcc" "src/CMakeFiles/primelabel_store.dir/store/btree.cc.o.d"
  "/root/repo/src/store/catalog.cc" "src/CMakeFiles/primelabel_store.dir/store/catalog.cc.o" "gcc" "src/CMakeFiles/primelabel_store.dir/store/catalog.cc.o.d"
  "/root/repo/src/store/label_table.cc" "src/CMakeFiles/primelabel_store.dir/store/label_table.cc.o" "gcc" "src/CMakeFiles/primelabel_store.dir/store/label_table.cc.o.d"
  "/root/repo/src/store/plan.cc" "src/CMakeFiles/primelabel_store.dir/store/plan.cc.o" "gcc" "src/CMakeFiles/primelabel_store.dir/store/plan.cc.o.d"
  "/root/repo/src/store/range_index.cc" "src/CMakeFiles/primelabel_store.dir/store/range_index.cc.o" "gcc" "src/CMakeFiles/primelabel_store.dir/store/range_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_primes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
