file(REMOVE_RECURSE
  "libprimelabel_store.a"
)
