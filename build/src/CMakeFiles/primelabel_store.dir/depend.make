# Empty dependencies file for primelabel_store.
# This may be replaced when dependencies are built.
