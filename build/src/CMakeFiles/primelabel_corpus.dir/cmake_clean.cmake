file(REMOVE_RECURSE
  "CMakeFiles/primelabel_corpus.dir/corpus/document_store.cc.o"
  "CMakeFiles/primelabel_corpus.dir/corpus/document_store.cc.o.d"
  "CMakeFiles/primelabel_corpus.dir/corpus/labeled_document.cc.o"
  "CMakeFiles/primelabel_corpus.dir/corpus/labeled_document.cc.o.d"
  "libprimelabel_corpus.a"
  "libprimelabel_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
