# Empty dependencies file for primelabel_corpus.
# This may be replaced when dependencies are built.
