file(REMOVE_RECURSE
  "libprimelabel_corpus.a"
)
