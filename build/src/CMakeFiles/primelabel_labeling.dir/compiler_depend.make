# Empty compiler generated dependencies file for primelabel_labeling.
# This may be replaced when dependencies are built.
