
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/dewey.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/dewey.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/dewey.cc.o.d"
  "/root/repo/src/labeling/float_interval.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/float_interval.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/float_interval.cc.o.d"
  "/root/repo/src/labeling/gapped_interval.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/gapped_interval.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/gapped_interval.cc.o.d"
  "/root/repo/src/labeling/interval.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/interval.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/interval.cc.o.d"
  "/root/repo/src/labeling/prefix.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prefix.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prefix.cc.o.d"
  "/root/repo/src/labeling/prime_bottom_up.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_bottom_up.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_bottom_up.cc.o.d"
  "/root/repo/src/labeling/prime_optimized.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_optimized.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_optimized.cc.o.d"
  "/root/repo/src/labeling/prime_top_down.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_top_down.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/prime_top_down.cc.o.d"
  "/root/repo/src/labeling/scheme.cc" "src/CMakeFiles/primelabel_labeling.dir/labeling/scheme.cc.o" "gcc" "src/CMakeFiles/primelabel_labeling.dir/labeling/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_primes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
