file(REMOVE_RECURSE
  "libprimelabel_labeling.a"
)
