file(REMOVE_RECURSE
  "CMakeFiles/primelabel_labeling.dir/labeling/dewey.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/dewey.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/float_interval.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/float_interval.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/gapped_interval.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/gapped_interval.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/interval.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/interval.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/prefix.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/prefix.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_bottom_up.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_bottom_up.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_optimized.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_optimized.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_top_down.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/prime_top_down.cc.o.d"
  "CMakeFiles/primelabel_labeling.dir/labeling/scheme.cc.o"
  "CMakeFiles/primelabel_labeling.dir/labeling/scheme.cc.o.d"
  "libprimelabel_labeling.a"
  "libprimelabel_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
