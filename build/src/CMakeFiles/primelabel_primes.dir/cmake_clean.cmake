file(REMOVE_RECURSE
  "CMakeFiles/primelabel_primes.dir/primes/estimates.cc.o"
  "CMakeFiles/primelabel_primes.dir/primes/estimates.cc.o.d"
  "CMakeFiles/primelabel_primes.dir/primes/miller_rabin.cc.o"
  "CMakeFiles/primelabel_primes.dir/primes/miller_rabin.cc.o.d"
  "CMakeFiles/primelabel_primes.dir/primes/prime_source.cc.o"
  "CMakeFiles/primelabel_primes.dir/primes/prime_source.cc.o.d"
  "CMakeFiles/primelabel_primes.dir/primes/sieve.cc.o"
  "CMakeFiles/primelabel_primes.dir/primes/sieve.cc.o.d"
  "libprimelabel_primes.a"
  "libprimelabel_primes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_primes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
