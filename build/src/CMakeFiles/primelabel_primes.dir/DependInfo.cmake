
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primes/estimates.cc" "src/CMakeFiles/primelabel_primes.dir/primes/estimates.cc.o" "gcc" "src/CMakeFiles/primelabel_primes.dir/primes/estimates.cc.o.d"
  "/root/repo/src/primes/miller_rabin.cc" "src/CMakeFiles/primelabel_primes.dir/primes/miller_rabin.cc.o" "gcc" "src/CMakeFiles/primelabel_primes.dir/primes/miller_rabin.cc.o.d"
  "/root/repo/src/primes/prime_source.cc" "src/CMakeFiles/primelabel_primes.dir/primes/prime_source.cc.o" "gcc" "src/CMakeFiles/primelabel_primes.dir/primes/prime_source.cc.o.d"
  "/root/repo/src/primes/sieve.cc" "src/CMakeFiles/primelabel_primes.dir/primes/sieve.cc.o" "gcc" "src/CMakeFiles/primelabel_primes.dir/primes/sieve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
