# Empty dependencies file for primelabel_primes.
# This may be replaced when dependencies are built.
