file(REMOVE_RECURSE
  "libprimelabel_primes.a"
)
