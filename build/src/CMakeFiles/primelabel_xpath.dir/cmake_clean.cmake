file(REMOVE_RECURSE
  "CMakeFiles/primelabel_xpath.dir/xpath/evaluator.cc.o"
  "CMakeFiles/primelabel_xpath.dir/xpath/evaluator.cc.o.d"
  "CMakeFiles/primelabel_xpath.dir/xpath/lexer.cc.o"
  "CMakeFiles/primelabel_xpath.dir/xpath/lexer.cc.o.d"
  "CMakeFiles/primelabel_xpath.dir/xpath/oracle.cc.o"
  "CMakeFiles/primelabel_xpath.dir/xpath/oracle.cc.o.d"
  "CMakeFiles/primelabel_xpath.dir/xpath/parser.cc.o"
  "CMakeFiles/primelabel_xpath.dir/xpath/parser.cc.o.d"
  "CMakeFiles/primelabel_xpath.dir/xpath/sql_translate.cc.o"
  "CMakeFiles/primelabel_xpath.dir/xpath/sql_translate.cc.o.d"
  "libprimelabel_xpath.a"
  "libprimelabel_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
