file(REMOVE_RECURSE
  "libprimelabel_xpath.a"
)
