# Empty dependencies file for primelabel_xpath.
# This may be replaced when dependencies are built.
