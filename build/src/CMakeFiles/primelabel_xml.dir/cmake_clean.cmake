file(REMOVE_RECURSE
  "CMakeFiles/primelabel_xml.dir/xml/dataguide.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/dataguide.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/datasets.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/datasets.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/parser.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/parser.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/sax.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/sax.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/serializer.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/serializer.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/shakespeare.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/shakespeare.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/stats.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/stats.cc.o.d"
  "CMakeFiles/primelabel_xml.dir/xml/tree.cc.o"
  "CMakeFiles/primelabel_xml.dir/xml/tree.cc.o.d"
  "libprimelabel_xml.a"
  "libprimelabel_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
