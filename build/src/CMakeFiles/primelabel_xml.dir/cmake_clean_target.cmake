file(REMOVE_RECURSE
  "libprimelabel_xml.a"
)
