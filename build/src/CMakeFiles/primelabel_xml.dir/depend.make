# Empty dependencies file for primelabel_xml.
# This may be replaced when dependencies are built.
