
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/dataguide.cc" "src/CMakeFiles/primelabel_xml.dir/xml/dataguide.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/dataguide.cc.o.d"
  "/root/repo/src/xml/datasets.cc" "src/CMakeFiles/primelabel_xml.dir/xml/datasets.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/datasets.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/primelabel_xml.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/sax.cc" "src/CMakeFiles/primelabel_xml.dir/xml/sax.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/sax.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/primelabel_xml.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/shakespeare.cc" "src/CMakeFiles/primelabel_xml.dir/xml/shakespeare.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/shakespeare.cc.o.d"
  "/root/repo/src/xml/stats.cc" "src/CMakeFiles/primelabel_xml.dir/xml/stats.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/stats.cc.o.d"
  "/root/repo/src/xml/tree.cc" "src/CMakeFiles/primelabel_xml.dir/xml/tree.cc.o" "gcc" "src/CMakeFiles/primelabel_xml.dir/xml/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
