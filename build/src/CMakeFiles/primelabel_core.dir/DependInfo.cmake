
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/crt.cc" "src/CMakeFiles/primelabel_core.dir/core/crt.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/crt.cc.o.d"
  "/root/repo/src/core/decomposed_prime_scheme.cc" "src/CMakeFiles/primelabel_core.dir/core/decomposed_prime_scheme.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/decomposed_prime_scheme.cc.o.d"
  "/root/repo/src/core/ordered_prime_scheme.cc" "src/CMakeFiles/primelabel_core.dir/core/ordered_prime_scheme.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/ordered_prime_scheme.cc.o.d"
  "/root/repo/src/core/path_combine.cc" "src/CMakeFiles/primelabel_core.dir/core/path_combine.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/path_combine.cc.o.d"
  "/root/repo/src/core/sc_table.cc" "src/CMakeFiles/primelabel_core.dir/core/sc_table.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/sc_table.cc.o.d"
  "/root/repo/src/core/streaming_labeler.cc" "src/CMakeFiles/primelabel_core.dir/core/streaming_labeler.cc.o" "gcc" "src/CMakeFiles/primelabel_core.dir/core/streaming_labeler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_primes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
