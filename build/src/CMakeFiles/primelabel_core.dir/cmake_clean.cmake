file(REMOVE_RECURSE
  "CMakeFiles/primelabel_core.dir/core/crt.cc.o"
  "CMakeFiles/primelabel_core.dir/core/crt.cc.o.d"
  "CMakeFiles/primelabel_core.dir/core/decomposed_prime_scheme.cc.o"
  "CMakeFiles/primelabel_core.dir/core/decomposed_prime_scheme.cc.o.d"
  "CMakeFiles/primelabel_core.dir/core/ordered_prime_scheme.cc.o"
  "CMakeFiles/primelabel_core.dir/core/ordered_prime_scheme.cc.o.d"
  "CMakeFiles/primelabel_core.dir/core/path_combine.cc.o"
  "CMakeFiles/primelabel_core.dir/core/path_combine.cc.o.d"
  "CMakeFiles/primelabel_core.dir/core/sc_table.cc.o"
  "CMakeFiles/primelabel_core.dir/core/sc_table.cc.o.d"
  "CMakeFiles/primelabel_core.dir/core/streaming_labeler.cc.o"
  "CMakeFiles/primelabel_core.dir/core/streaming_labeler.cc.o.d"
  "libprimelabel_core.a"
  "libprimelabel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
