# Empty compiler generated dependencies file for primelabel_core.
# This may be replaced when dependencies are built.
