file(REMOVE_RECURSE
  "libprimelabel_core.a"
)
