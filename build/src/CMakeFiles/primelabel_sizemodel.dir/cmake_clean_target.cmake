file(REMOVE_RECURSE
  "libprimelabel_sizemodel.a"
)
