file(REMOVE_RECURSE
  "CMakeFiles/primelabel_sizemodel.dir/sizemodel/size_model.cc.o"
  "CMakeFiles/primelabel_sizemodel.dir/sizemodel/size_model.cc.o.d"
  "libprimelabel_sizemodel.a"
  "libprimelabel_sizemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_sizemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
