# Empty dependencies file for primelabel_sizemodel.
# This may be replaced when dependencies are built.
