# Empty compiler generated dependencies file for primelabel_bigint.
# This may be replaced when dependencies are built.
