file(REMOVE_RECURSE
  "CMakeFiles/primelabel_bigint.dir/bigint/bigint.cc.o"
  "CMakeFiles/primelabel_bigint.dir/bigint/bigint.cc.o.d"
  "libprimelabel_bigint.a"
  "libprimelabel_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
