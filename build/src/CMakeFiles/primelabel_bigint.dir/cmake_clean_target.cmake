file(REMOVE_RECURSE
  "libprimelabel_bigint.a"
)
