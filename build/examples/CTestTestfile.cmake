# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ordered_queries "/root/repo/build/examples/ordered_queries")
set_tests_properties(example_ordered_queries PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_updates "/root/repo/build/examples/dynamic_updates")
set_tests_properties(example_dynamic_updates PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shakespeare_search "/root/repo/build/examples/shakespeare_search")
set_tests_properties(example_shakespeare_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corpus_search "/root/repo/build/examples/corpus_search")
set_tests_properties(example_corpus_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_usage "/root/repo/build/examples/primelabel_cli")
set_tests_properties(example_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
