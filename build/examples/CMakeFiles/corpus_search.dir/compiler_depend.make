# Empty compiler generated dependencies file for corpus_search.
# This may be replaced when dependencies are built.
