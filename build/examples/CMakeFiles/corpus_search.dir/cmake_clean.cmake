file(REMOVE_RECURSE
  "CMakeFiles/corpus_search.dir/corpus_search.cpp.o"
  "CMakeFiles/corpus_search.dir/corpus_search.cpp.o.d"
  "corpus_search"
  "corpus_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
