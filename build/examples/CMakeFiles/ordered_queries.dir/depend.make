# Empty dependencies file for ordered_queries.
# This may be replaced when dependencies are built.
