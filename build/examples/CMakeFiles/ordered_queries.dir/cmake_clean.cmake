file(REMOVE_RECURSE
  "CMakeFiles/ordered_queries.dir/ordered_queries.cpp.o"
  "CMakeFiles/ordered_queries.dir/ordered_queries.cpp.o.d"
  "ordered_queries"
  "ordered_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
