# Empty compiler generated dependencies file for primelabel_cli.
# This may be replaced when dependencies are built.
