file(REMOVE_RECURSE
  "CMakeFiles/primelabel_cli.dir/primelabel_cli.cpp.o"
  "CMakeFiles/primelabel_cli.dir/primelabel_cli.cpp.o.d"
  "primelabel_cli"
  "primelabel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primelabel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
