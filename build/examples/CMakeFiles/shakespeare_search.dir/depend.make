# Empty dependencies file for shakespeare_search.
# This may be replaced when dependencies are built.
