file(REMOVE_RECURSE
  "CMakeFiles/shakespeare_search.dir/shakespeare_search.cpp.o"
  "CMakeFiles/shakespeare_search.dir/shakespeare_search.cpp.o.d"
  "shakespeare_search"
  "shakespeare_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shakespeare_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
