# Empty compiler generated dependencies file for bench_fig18_ordered_updates.
# This may be replaced when dependencies are built.
