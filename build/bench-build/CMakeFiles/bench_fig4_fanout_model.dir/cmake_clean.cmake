file(REMOVE_RECURSE
  "../bench/bench_fig4_fanout_model"
  "../bench/bench_fig4_fanout_model.pdb"
  "CMakeFiles/bench_fig4_fanout_model.dir/bench_fig4_fanout_model.cc.o"
  "CMakeFiles/bench_fig4_fanout_model.dir/bench_fig4_fanout_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fanout_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
