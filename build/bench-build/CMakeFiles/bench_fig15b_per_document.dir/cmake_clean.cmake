file(REMOVE_RECURSE
  "../bench/bench_fig15b_per_document"
  "../bench/bench_fig15b_per_document.pdb"
  "CMakeFiles/bench_fig15b_per_document.dir/bench_fig15b_per_document.cc.o"
  "CMakeFiles/bench_fig15b_per_document.dir/bench_fig15b_per_document.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b_per_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
