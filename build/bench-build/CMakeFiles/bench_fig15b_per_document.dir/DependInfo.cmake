
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15b_per_document.cc" "bench-build/CMakeFiles/bench_fig15b_per_document.dir/bench_fig15b_per_document.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig15b_per_document.dir/bench_fig15b_per_document.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/primelabel_sizemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_primes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/primelabel_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
