# Empty dependencies file for bench_fig15b_per_document.
# This may be replaced when dependencies are built.
