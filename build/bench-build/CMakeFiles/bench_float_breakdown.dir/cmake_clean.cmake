file(REMOVE_RECURSE
  "../bench/bench_float_breakdown"
  "../bench/bench_float_breakdown.pdb"
  "CMakeFiles/bench_float_breakdown.dir/bench_float_breakdown.cc.o"
  "CMakeFiles/bench_float_breakdown.dir/bench_float_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_float_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
