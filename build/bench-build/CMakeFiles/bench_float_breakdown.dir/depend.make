# Empty dependencies file for bench_float_breakdown.
# This may be replaced when dependencies are built.
