# Empty compiler generated dependencies file for bench_fig16_leaf_updates.
# This may be replaced when dependencies are built.
