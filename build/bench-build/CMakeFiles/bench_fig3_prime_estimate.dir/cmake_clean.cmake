file(REMOVE_RECURSE
  "../bench/bench_fig3_prime_estimate"
  "../bench/bench_fig3_prime_estimate.pdb"
  "CMakeFiles/bench_fig3_prime_estimate.dir/bench_fig3_prime_estimate.cc.o"
  "CMakeFiles/bench_fig3_prime_estimate.dir/bench_fig3_prime_estimate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prime_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
