# Empty dependencies file for bench_fig3_prime_estimate.
# This may be replaced when dependencies are built.
