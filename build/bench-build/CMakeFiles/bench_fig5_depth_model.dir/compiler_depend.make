# Empty compiler generated dependencies file for bench_fig5_depth_model.
# This may be replaced when dependencies are built.
