# Empty compiler generated dependencies file for bench_fig15_queries.
# This may be replaced when dependencies are built.
