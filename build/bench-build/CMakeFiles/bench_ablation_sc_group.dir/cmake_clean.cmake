file(REMOVE_RECURSE
  "../bench/bench_ablation_sc_group"
  "../bench/bench_ablation_sc_group.pdb"
  "CMakeFiles/bench_ablation_sc_group.dir/bench_ablation_sc_group.cc.o"
  "CMakeFiles/bench_ablation_sc_group.dir/bench_ablation_sc_group.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sc_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
