# Empty compiler generated dependencies file for bench_ablation_sc_group.
# This may be replaced when dependencies are built.
