file(REMOVE_RECURSE
  "../bench/bench_fig14_space"
  "../bench/bench_fig14_space.pdb"
  "CMakeFiles/bench_fig14_space.dir/bench_fig14_space.cc.o"
  "CMakeFiles/bench_fig14_space.dir/bench_fig14_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
