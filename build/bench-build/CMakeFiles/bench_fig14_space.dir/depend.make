# Empty dependencies file for bench_fig14_space.
# This may be replaced when dependencies are built.
